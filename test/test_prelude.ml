(* Tests for rt_prelude: float comparison, integer/numeric utilities,
   statistics, RNG/UUniFast, and table rendering. *)

open Rt_prelude

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Float_cmp *)

let test_approx_eq () =
  check_bool "equal" true (Float_cmp.approx_eq 1.0 1.0);
  check_bool "tiny diff" true (Float_cmp.approx_eq 1.0 (1.0 +. 1e-12));
  check_bool "relative at scale" true
    (Float_cmp.approx_eq 1e12 (1e12 +. 1.));
  check_bool "clear difference" false (Float_cmp.approx_eq 1.0 1.1);
  check_bool "zero vs tiny" true (Float_cmp.approx_eq 0. 1e-12)

let test_leq_geq () =
  check_bool "leq strict" true (Float_cmp.leq 1.0 2.0);
  check_bool "leq equal" true (Float_cmp.leq 2.0 2.0);
  check_bool "leq slack" true (Float_cmp.leq (2.0 +. 1e-12) 2.0);
  check_bool "leq false" false (Float_cmp.leq 2.1 2.0);
  (* infinite densities must never pass a finite feasibility cap: the
     naive tolerant form degenerates to inf <= inf *)
  check_bool "leq inf vs finite" false (Float_cmp.leq Float.infinity 2.0);
  check_bool "leq finite vs inf" true (Float_cmp.leq 2.0 Float.infinity);
  check_bool "leq inf vs inf" true
    (Float_cmp.leq Float.infinity Float.infinity);
  check_bool "leq nan" false (Float_cmp.leq Float.nan 2.0);
  check_bool "gt" true (Float_cmp.gt 2.1 2.0);
  check_bool "gt not on eps" false (Float_cmp.gt (2.0 +. 1e-13) 2.0);
  check_bool "lt" true (Float_cmp.lt 1.9 2.0)

let test_clamp () =
  check_float "below" 1. (Float_cmp.clamp ~lo:1. ~hi:2. 0.);
  check_float "inside" 1.5 (Float_cmp.clamp ~lo:1. ~hi:2. 1.5);
  check_float "above" 2. (Float_cmp.clamp ~lo:1. ~hi:2. 3.);
  Alcotest.check_raises "inverted" (Invalid_argument "Float_cmp.clamp: lo > hi")
    (fun () -> ignore (Float_cmp.clamp ~lo:2. ~hi:1. 0.))

let test_compare_approx () =
  check_int "equal" 0 (Float_cmp.compare_approx 1.0 (1.0 +. 1e-12));
  check_bool "less" true (Float_cmp.compare_approx 1.0 2.0 < 0);
  check_bool "greater" true (Float_cmp.compare_approx 2.0 1.0 > 0)

(* ------------------------------------------------------------------ *)
(* Math_util *)

let test_gcd_lcm () =
  check_int "gcd" 6 (Math_util.gcd 12 18);
  check_int "gcd zero" 5 (Math_util.gcd 0 5);
  check_int "gcd negatives" 4 (Math_util.gcd (-8) 12);
  check_int "lcm" 36 (Math_util.lcm 12 18);
  check_int "lcm_list" 2000 (Math_util.lcm_list [ 100; 200; 250; 400; 500 ]);
  Alcotest.check_raises "lcm non-positive"
    (Invalid_argument "Math_util.lcm: non-positive argument") (fun () ->
      ignore (Math_util.lcm 0 3))

let test_lcm_checked () =
  check_bool "small ok" true (Math_util.lcm_checked 12 18 = Ok 36);
  check_bool "non-positive is an error" true
    (Result.is_error (Math_util.lcm_checked 0 3));
  (* consecutive integers are coprime, so this lcm is their product —
     far past max_int; the guard must catch it before the multiply *)
  check_bool "overflow is an error" true
    (Result.is_error (Math_util.lcm_checked max_int (max_int - 1)));
  check_bool "list ok" true
    (Math_util.lcm_list_checked [ 100; 200; 250; 400; 500 ] = Ok 2000);
  check_bool "empty list is an error" true
    (Result.is_error (Math_util.lcm_list_checked []));
  check_bool "list overflow is an error" true
    (Result.is_error (Math_util.lcm_list_checked [ max_int; max_int - 1 ]))

let test_pow_int () =
  check_int "2^10" 1024 (Math_util.pow_int 2 10);
  check_int "x^0" 1 (Math_util.pow_int 7 0);
  check_int "0^5" 0 (Math_util.pow_int 0 5);
  Alcotest.check_raises "negative exponent"
    (Invalid_argument "Math_util.pow_int: negative exponent") (fun () ->
      ignore (Math_util.pow_int 2 (-1)))

let test_ranges () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Math_util.range 2 4);
  Alcotest.(check (list int)) "empty range" [] (Math_util.range 3 2);
  let fr = Math_util.frange ~lo:0. ~hi:1. ~steps:4 in
  check_int "frange size" 5 (List.length fr);
  check_float "frange first" 0. (List.nth fr 0);
  check_float "frange mid" 0.5 (List.nth fr 2);
  check_float "frange last" 1. (List.nth fr 4)

let test_golden_section () =
  let f x = ((x -. 1.7) ** 2.) +. 3. in
  let x, v = Math_util.golden_section_min ~f ~lo:0. ~hi:10. () in
  Alcotest.(check (float 1e-5)) "argmin" 1.7 x;
  Alcotest.(check (float 1e-5)) "min value" 3. v

let test_bisect_root () =
  let f x = (x *. x) -. 2. in
  let r = Math_util.bisect_root ~f ~lo:0. ~hi:2. () in
  Alcotest.(check (float 1e-9)) "sqrt2" (sqrt 2.) r;
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Math_util.bisect_root: endpoints do not bracket a root")
    (fun () -> ignore (Math_util.bisect_root ~f ~lo:2. ~hi:3. ()))

let test_bisect_decreasing () =
  let f x = 1. /. x in
  let r = Math_util.bisect_decreasing ~f ~target:0.5 ~lo:0.1 ~hi:10. () in
  Alcotest.(check (float 1e-6)) "solves f x = target" 2. r;
  (* clamping behaviour *)
  check_float "target above f lo" 0.1
    (Math_util.bisect_decreasing ~f ~target:100. ~lo:0.1 ~hi:10. ());
  check_float "target below f hi" 10.
    (Math_util.bisect_decreasing ~f ~target:0.0001 ~lo:0.1 ~hi:10. ())

let prop_golden_section_beats_samples =
  qtest "golden-section min is no worse than a coarse scan"
    QCheck2.Gen.(pair (float_range 0.2 5.) (float_range (-3.) 3.))
    (fun (a, b) ->
      let f x = (a *. (x -. b) ** 2.) +. 1. in
      let _, v = Math_util.golden_section_min ~f ~lo:(-10.) ~hi:10. () in
      List.for_all
        (fun x -> v <= f x +. 1e-6)
        (Math_util.frange ~lo:(-10.) ~hi:10. ~steps:100))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "median even" 2.5 (Stats.median xs);
  check_float "median odd" 2. (Stats.median [ 1.; 2.; 7. ]);
  check_float "min" 1. (Stats.minimum xs);
  check_float "max" 4. (Stats.maximum xs);
  Alcotest.(check (float 1e-9))
    "stddev" (sqrt (5. /. 3.)) (Stats.stddev xs);
  check_float "stddev singleton" 0. (Stats.stddev [ 42. ])

let test_percentile () =
  let xs = [ 10.; 20.; 30.; 40.; 50. ] in
  check_float "p0" 10. (Stats.percentile 0. xs);
  check_float "p50" 30. (Stats.percentile 50. xs);
  check_float "p100" 50. (Stats.percentile 100. xs);
  check_float "p25 interpolates" 20. (Stats.percentile 25. xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty sample")
    (fun () -> ignore (Stats.percentile 50. []))

let test_geometric_mean () =
  check_float "gm" 2. (Stats.geometric_mean [ 1.; 2.; 4. ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive sample") (fun () ->
      ignore (Stats.geometric_mean [ 1.; 0. ]))

let prop_mean_bounds =
  qtest "mean lies between min and max"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let m = Stats.mean xs in
      Stats.minimum xs -. 1e-9 <= m && m <= Stats.maximum xs +. 1e-9)

let prop_summary_consistent =
  qtest "summarize agrees with the individual aggregates"
    QCheck2.Gen.(list_size (int_range 2 40) (float_range 0. 10.))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.n = List.length xs
      && Float_cmp.approx_eq ~eps:1e-9 s.Stats.mean (Stats.mean xs)
      && Float_cmp.approx_eq ~eps:1e-9 s.Stats.median (Stats.median xs))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let r1 = Rng.create ~seed:42 and r2 = Rng.create ~seed:42 in
  let xs1 = List.init 10 (fun _ -> Rng.int r1 ~lo:0 ~hi:1000) in
  let xs2 = List.init 10 (fun _ -> Rng.int r2 ~lo:0 ~hi:1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs1 xs2;
  let r3 = Rng.create ~seed:43 in
  let xs3 = List.init 10 (fun _ -> Rng.int r3 ~lo:0 ~hi:1000) in
  check_bool "different seed differs" true (xs1 <> xs3)

let test_rng_ranges () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 500 do
    let i = Rng.int rng ~lo:(-3) ~hi:5 in
    check_bool "int in range" true (i >= -3 && i <= 5);
    let f = Rng.float rng ~lo:2. ~hi:3. in
    check_bool "float in range" true (f >= 2. && f < 3.);
    let lu = Rng.log_uniform rng ~lo:0.1 ~hi:10. in
    check_bool "log_uniform in range" true (lu >= 0.1 && lu <= 10.)
  done

let test_split_streams_differ () =
  let parent = Rng.create ~seed:21 in
  let a = Rng.split parent in
  let b = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.int a ~lo:0 ~hi:1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b ~lo:0 ~hi:1_000_000) in
  check_bool "children are independent streams" true (xs <> ys)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:11 in
  let xs = Rt_prelude.Math_util.range 0 20 in
  let ys = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_uunifast_sums () =
  let rng = Rng.create ~seed:3 in
  for n = 1 to 20 do
    let us = Rng.uunifast rng ~n ~total:0.8 in
    check_int "count" n (List.length us);
    Alcotest.(check (float 1e-9))
      "sums to total" 0.8
      (List.fold_left ( +. ) 0. us);
    check_bool "non-negative" true (List.for_all (fun u -> u >= 0.) us)
  done

let prop_uunifast =
  qtest "uunifast: n draws, exact sum, non-negative"
    QCheck2.Gen.(pair (int_range 1 30) (float_range 0.01 8.))
    (fun (n, total) ->
      let rng = Rng.create ~seed:(n + int_of_float (total *. 1000.)) in
      let us = Rng.uunifast rng ~n ~total in
      List.length us = n
      && Float_cmp.approx_eq ~eps:1e-9 (List.fold_left ( +. ) 0. us) total
      && List.for_all (fun u -> u >= -1e-12) us)

(* ------------------------------------------------------------------ *)
(* Tablefmt *)

let test_table_render () =
  let t =
    Tablefmt.create ~aligns:[ Tablefmt.Left; Tablefmt.Right ] [ "name"; "v" ]
  in
  let t = Tablefmt.add_row t [ "alpha"; "1.0" ] in
  let t = Tablefmt.add_row t [ "b"; "12.5" ] in
  let rendered = Tablefmt.render t in
  let lines = String.split_on_char '\n' rendered in
  check_int "header + sep + 2 rows" 4 (List.length lines);
  check_bool "left align" true
    (String.length (List.nth lines 2) > 0 && (List.nth lines 2).[0] = 'a');
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: arity mismatch")
    (fun () -> ignore (Tablefmt.add_row t [ "only-one" ]))

let test_table_csv () =
  let t = Tablefmt.create [ "a"; "b" ] in
  let t = Tablefmt.add_row t [ "x,y"; "has \"quote\"" ] in
  Alcotest.(check string)
    "csv quoting" "a,b\n\"x,y\",\"has \"\"quote\"\"\"" (Tablefmt.to_csv t)

let test_float_row () =
  let t = Tablefmt.create [ "label"; "x"; "y" ] in
  let t = Tablefmt.add_float_row t "row" [ 1.23456; 2. ] in
  check_bool "renders" true (String.length (Tablefmt.render t) > 0)

let () =
  Alcotest.run "rt_prelude"
    [
      ( "float_cmp",
        [
          Alcotest.test_case "approx_eq" `Quick test_approx_eq;
          Alcotest.test_case "leq/geq/lt/gt" `Quick test_leq_geq;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "compare_approx" `Quick test_compare_approx;
        ] );
      ( "math_util",
        [
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "checked lcm overflow guard" `Quick
            test_lcm_checked;
          Alcotest.test_case "pow_int" `Quick test_pow_int;
          Alcotest.test_case "ranges" `Quick test_ranges;
          Alcotest.test_case "golden section" `Quick test_golden_section;
          Alcotest.test_case "bisect root" `Quick test_bisect_root;
          Alcotest.test_case "bisect decreasing" `Quick test_bisect_decreasing;
          prop_golden_section_beats_samples;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic aggregates" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          prop_mean_bounds;
          prop_summary_consistent;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "split streams differ" `Quick
            test_split_streams_differ;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_shuffle_permutation;
          Alcotest.test_case "uunifast sums" `Quick test_uunifast_sums;
          prop_uunifast;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "float rows" `Quick test_float_row;
        ] );
    ]
