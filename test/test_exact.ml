(* Tests for rt_exact: subset enumeration, exhaustive/branch-and-bound
   search, and the knapsack DP. *)

open Rt_task
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let items_of specs =
  List.mapi (fun id (w, p) -> Task.item ~penalty:p ~id ~weight:w ()) specs

(* a simple convex bucket cost: energy of sustaining the load, cubic model *)
let cubic_cost load = load ** 3.

(* ------------------------------------------------------------------ *)
(* Subsets *)

let test_subsets_count () =
  check_int "2^3" 8 (Rt_exact.Subsets.count [ 1; 2; 3 ]);
  let seen = ref 0 in
  Rt_exact.Subsets.iter [ 1; 2 ] (fun _ -> incr seen);
  check_int "iterates all" 4 !seen

let test_subsets_partition_property () =
  Rt_exact.Subsets.iter [ 1; 2; 3; 4 ] (fun (chosen, rest) ->
      check_int "parts cover" 4 (List.length chosen + List.length rest);
      Alcotest.(check (list int))
        "order preserved"
        (List.sort compare (chosen @ rest))
        [ 1; 2; 3; 4 ])

let test_subsets_guard () =
  match Rt_exact.Subsets.count (List.init 31 Fun.id) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "should refuse 31 elements"

(* ------------------------------------------------------------------ *)
(* Search *)

let test_exhaustive_trivial () =
  (* one small item, huge penalty: accept it *)
  let items = items_of [ (0.5, 100.) ] in
  let s =
    Rt_exact.Search.exhaustive ~m:2 ~capacity:1. ~bucket_cost:cubic_cost items
  in
  check_int "accepted" 1 (Rt_partition.Partition.size s.Rt_exact.Search.partition);
  check_float 1e-9 "cost is its energy" (0.5 ** 3.) s.Rt_exact.Search.cost

let test_exhaustive_prefers_rejection () =
  (* penalty below the energy of running: reject *)
  let items = items_of [ (1.0, 0.1) ] in
  let s =
    Rt_exact.Search.exhaustive ~m:1 ~capacity:1. ~bucket_cost:cubic_cost items
  in
  check_int "rejected" 1 (List.length s.Rt_exact.Search.rejected);
  check_float 1e-12 "cost is the penalty" 0.1 s.Rt_exact.Search.cost

let test_forced_rejection_oversize () =
  let items = items_of [ (2.0, 5.) ] in
  let s =
    Rt_exact.Search.exhaustive ~m:3 ~capacity:1. ~bucket_cost:cubic_cost items
  in
  check_int "oversize rejected" 1 (List.length s.Rt_exact.Search.rejected);
  check_float 1e-12 "pays the penalty" 5. s.Rt_exact.Search.cost

let test_exhaustive_balances () =
  (* two items, huge penalties: convexity wants them on separate processors *)
  let items = items_of [ (0.8, 100.); (0.8, 100.) ] in
  let s =
    Rt_exact.Search.exhaustive ~m:2 ~capacity:1. ~bucket_cost:cubic_cost items
  in
  check_float 1e-9 "one per processor" (2. *. (0.8 ** 3.)) s.Rt_exact.Search.cost

let prop_bnb_matches_exhaustive =
  qtest ~count:60 "branch-and-bound finds the exhaustive optimum"
    QCheck2.Gen.(
      pair (int_range 1 3)
        (list_size (int_range 1 7)
           (pair (float_range 0.1 1.2) (float_range 0. 1.))))
    (fun (m, specs) ->
      let items = items_of specs in
      let a =
        Rt_exact.Search.exhaustive ~m ~capacity:1. ~bucket_cost:cubic_cost items
      in
      let b =
        Rt_exact.Search.branch_and_bound ~m ~capacity:1.
          ~bucket_cost:cubic_cost items
      in
      Fc.approx_eq ~eps:1e-9 a.Rt_exact.Search.cost b.Rt_exact.Search.cost)

let prop_search_solution_consistent =
  qtest ~count:60 "search output: capacity respected, cost re-derivable"
    QCheck2.Gen.(
      list_size (int_range 1 7) (pair (float_range 0.1 1.2) (float_range 0. 1.)))
    (fun specs ->
      let items = items_of specs in
      let s =
        Rt_exact.Search.branch_and_bound ~m:2 ~capacity:1.
          ~bucket_cost:cubic_cost items
      in
      let loads = Rt_partition.Partition.loads s.Rt_exact.Search.partition in
      let energy = Array.fold_left (fun acc l -> acc +. cubic_cost l) 0. loads in
      let penalty = Taskset.total_penalty_items s.Rt_exact.Search.rejected in
      Array.for_all (fun l -> Fc.leq ~eps:1e-9 l 1.) loads
      && Fc.approx_eq ~eps:1e-9 (energy +. penalty) s.Rt_exact.Search.cost)

let test_node_limit () =
  let items =
    items_of (List.init 14 (fun i -> (0.1 +. (0.01 *. float_of_int i), 0.5)))
  in
  match
    Rt_exact.Search.branch_and_bound ~node_limit:10 ~m:3 ~capacity:1.
      ~bucket_cost:cubic_cost items
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "node limit should fire"

(* ------------------------------------------------------------------ *)
(* Anytime (budgeted) search *)

let test_budgeted_zero_budget_seed () =
  (* even a zero node budget returns the all-reject incumbent, typed
     exhausted rather than raising like the node_limit path *)
  let items = items_of [ (0.5, 1.); (0.4, 2.) ] in
  match
    Rt_exact.Search.branch_and_bound_budgeted ~node_budget:0 ~m:2 ~capacity:1.
      ~bucket_cost:cubic_cost items
  with
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok a ->
      check_bool "exhausted" true a.Rt_exact.Search.exhausted;
      let b = a.Rt_exact.Search.best in
      check_int "all rejected" 2 (List.length b.Rt_exact.Search.rejected);
      check_float 1e-12 "cost = total penalty" 3. b.Rt_exact.Search.cost

let test_budgeted_completes_matches_optimum () =
  let items = items_of [ (0.8, 100.); (0.8, 100.); (0.3, 0.01) ] in
  let opt =
    Rt_exact.Search.branch_and_bound ~m:2 ~capacity:1.
      ~bucket_cost:cubic_cost items
  in
  (match
     Rt_exact.Search.branch_and_bound_budgeted ~node_budget:1_000_000 ~m:2
       ~capacity:1. ~bucket_cost:cubic_cost items
   with
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok a ->
      check_bool "not exhausted" false a.Rt_exact.Search.exhausted;
      check_float 1e-12 "matches branch-and-bound"
        opt.Rt_exact.Search.cost a.Rt_exact.Search.best.Rt_exact.Search.cost);
  match
    Rt_exact.Search.exhaustive_budgeted ~m:2 ~capacity:1.
      ~bucket_cost:cubic_cost items
  with
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok a ->
      check_bool "exhaustive not exhausted" false a.Rt_exact.Search.exhausted;
      check_float 1e-12 "exhaustive matches too"
        opt.Rt_exact.Search.cost a.Rt_exact.Search.best.Rt_exact.Search.cost

let test_budgeted_hardness_anytime () =
  (* acceptance criterion: on a hardness instance a tiny node budget must
     come back exhausted with a valid best-so-far whose cost still sits
     above the convex pooled lower bound *)
  let gadget =
    match
      Rt_core.Hardness.partition_gadget
        [ 7; 9; 11; 13; 15; 17; 19; 21; 23; 25; 27; 29 ]
    with
    | Ok g -> g
    | Error e -> Alcotest.failf "gadget: %s" e
  in
  let p = gadget.Rt_core.Hardness.problem in
  match Rt_core.Exact.branch_and_bound_budgeted ~node_budget:50 p with
  | Error e -> Alcotest.failf "budgeted: %s" e
  | Ok r ->
      check_bool "exhausted" true r.Rt_core.Exact.exhausted;
      check_bool "visited more nodes than the budget allows incumbents for"
        true (r.Rt_core.Exact.nodes > 50);
      (match Rt_core.Solution.validate p r.Rt_core.Exact.solution with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid incumbent: %s" e);
      let c =
        match Rt_core.Solution.cost p r.Rt_core.Exact.solution with
        | Ok c -> c
        | Error e -> Alcotest.failf "cost: %s" e
      in
      check_bool "incumbent cost >= lower bound" true
        (c.Rt_core.Solution.total >= Rt_core.Bounds.lower_bound p -. 1e-9)

let test_budgeted_time_budget () =
  (* an already-expired time budget stops the search at the next clock
     poll (every 1024 nodes), so a big instance must come back exhausted
     with an incumbent no worse than all-reject *)
  let items =
    items_of (List.init 18 (fun i -> (0.1 +. (0.01 *. float_of_int i), 0.5)))
  in
  let all_reject = Rt_task.Taskset.total_penalty_items items in
  match
    Rt_exact.Search.branch_and_bound_budgeted ~time_budget:0. ~m:3 ~capacity:1.
      ~bucket_cost:cubic_cost items
  with
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok a ->
      check_bool "exhausted" true a.Rt_exact.Search.exhausted;
      check_bool "incumbent no worse than all-reject" true
        (Fc.leq ~eps:1e-12 a.Rt_exact.Search.best.Rt_exact.Search.cost
           all_reject)

let test_budgeted_bad_args () =
  let items = items_of [ (0.5, 1.) ] in
  check_bool "m < 1 is a typed error" true
    (Result.is_error
       (Rt_exact.Search.branch_and_bound_budgeted ~m:0 ~capacity:1.
          ~bucket_cost:cubic_cost items));
  check_bool "capacity <= 0 is a typed error" true
    (Result.is_error
       (Rt_exact.Search.exhaustive_budgeted ~m:2 ~capacity:0.
          ~bucket_cost:cubic_cost items))

(* ------------------------------------------------------------------ *)
(* Knapsack *)

let linear_cost w = 0.001 *. float_of_int w

let test_knapsack_accepts_under_capacity () =
  (* all fit, penalties dominate the tiny energy: accept everything *)
  let c = Rt_exact.Knapsack.solve ~capacity:100 ~cycles:[| 30; 40 |]
      ~penalties:[| 10.; 10. |] ~accept_cost:linear_cost
  in
  check_bool "all accepted" true (Array.for_all Fun.id c.Rt_exact.Knapsack.accepted);
  check_int "total" 70 c.Rt_exact.Knapsack.total_cycles

let test_knapsack_picks_best_subset () =
  (* capacity forces a choice: keep the high-penalty item *)
  let c =
    Rt_exact.Knapsack.solve ~capacity:50 ~cycles:[| 40; 40 |]
      ~penalties:[| 1.; 9. |] ~accept_cost:linear_cost
  in
  check_bool "keeps the expensive-to-drop item" true
    ((not c.Rt_exact.Knapsack.accepted.(0)) && c.Rt_exact.Knapsack.accepted.(1));
  check_float 1e-9 "cost = drop(0) + energy(40)" (1. +. 0.04)
    c.Rt_exact.Knapsack.cost

let test_knapsack_rejects_when_energy_dominates () =
  let expensive w = 100. *. float_of_int w in
  let c =
    Rt_exact.Knapsack.solve ~capacity:100 ~cycles:[| 10 |] ~penalties:[| 5. |]
      ~accept_cost:expensive
  in
  check_bool "rejected" true (not c.Rt_exact.Knapsack.accepted.(0));
  check_float 1e-12 "cost = penalty" 5. c.Rt_exact.Knapsack.cost

let brute_force_knapsack ~capacity ~cycles ~penalties ~accept_cost =
  let n = Array.length cycles in
  let best = ref Float.infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let w = ref 0 and pen = ref 0. in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then w := !w + cycles.(i)
      else pen := !pen +. penalties.(i)
    done;
    if !w <= capacity then best := Float.min !best (accept_cost !w +. !pen)
  done;
  !best

let prop_knapsack_matches_brute_force =
  qtest ~count:80 "DP equals subset brute force (convex accept cost)"
    QCheck2.Gen.(
      list_size (int_range 1 8) (pair (int_range 1 40) (float_range 0. 2.)))
    (fun specs ->
      let cycles = Array.of_list (List.map fst specs) in
      let penalties = Array.of_list (List.map snd specs) in
      let capacity = 80 in
      let accept_cost w = (float_of_int w /. 80.) ** 3. in
      let c =
        Rt_exact.Knapsack.solve ~capacity ~cycles ~penalties ~accept_cost
      in
      let bf = brute_force_knapsack ~capacity ~cycles ~penalties ~accept_cost in
      Fc.approx_eq ~eps:1e-9 c.Rt_exact.Knapsack.cost bf)

let prop_knapsack_choice_consistent =
  qtest ~count:80 "reported cost matches the reconstructed accept set"
    QCheck2.Gen.(
      list_size (int_range 1 10) (pair (int_range 1 30) (float_range 0. 2.)))
    (fun specs ->
      let cycles = Array.of_list (List.map fst specs) in
      let penalties = Array.of_list (List.map snd specs) in
      let capacity = 60 in
      let accept_cost w = 0.01 *. float_of_int w in
      let c = Rt_exact.Knapsack.solve ~capacity ~cycles ~penalties ~accept_cost in
      let w = ref 0 and pen = ref 0. in
      Array.iteri
        (fun i acc ->
          if acc then w := !w + cycles.(i) else pen := !pen +. penalties.(i))
        c.Rt_exact.Knapsack.accepted;
      !w = c.Rt_exact.Knapsack.total_cycles
      && !w <= capacity
      && Fc.approx_eq ~eps:1e-9
           (accept_cost !w +. !pen)
           c.Rt_exact.Knapsack.cost)

let prop_scaled_feasible_and_bounded =
  qtest ~count:60 "scaled DP stays feasible and within the documented gap"
    QCheck2.Gen.(
      pair (int_range 2 8)
        (list_size (int_range 1 8) (pair (int_range 5 50) (float_range 0. 3.))))
    (fun (scale, specs) ->
      let cycles = Array.of_list (List.map fst specs) in
      let penalties = Array.of_list (List.map snd specs) in
      let capacity = 100 in
      let accept_cost w = (float_of_int w /. 100.) ** 3. in
      let exact = Rt_exact.Knapsack.solve ~capacity ~cycles ~penalties ~accept_cost in
      let scaled =
        Rt_exact.Knapsack.solve_scaled ~scale ~capacity ~cycles ~penalties
          ~accept_cost
      in
      let w = ref 0 in
      Array.iteri
        (fun i acc -> if acc then w := !w + cycles.(i))
        scaled.Rt_exact.Knapsack.accepted;
      (* feasibility is unconditional; optimality degrades gracefully *)
      !w <= capacity && scaled.Rt_exact.Knapsack.cost >= exact.Rt_exact.Knapsack.cost -. 1e-9)

let test_scale_for_epsilon () =
  let s = Rt_exact.Knapsack.scale_for_epsilon ~epsilon:0.5 ~cycles:[| 1000; 200 |] in
  check_int "eps·cmax/n" 250 s;
  check_int "never below 1" 1
    (Rt_exact.Knapsack.scale_for_epsilon ~epsilon:0.001 ~cycles:[| 10 |])

let () =
  Alcotest.run "rt_exact"
    [
      ( "subsets",
        [
          Alcotest.test_case "count" `Quick test_subsets_count;
          Alcotest.test_case "partition property" `Quick
            test_subsets_partition_property;
          Alcotest.test_case "length guard" `Quick test_subsets_guard;
        ] );
      ( "search",
        [
          Alcotest.test_case "accepts worthwhile item" `Quick test_exhaustive_trivial;
          Alcotest.test_case "rejects costly item" `Quick
            test_exhaustive_prefers_rejection;
          Alcotest.test_case "oversize forced out" `Quick
            test_forced_rejection_oversize;
          Alcotest.test_case "balances across processors" `Quick
            test_exhaustive_balances;
          prop_bnb_matches_exhaustive;
          prop_search_solution_consistent;
          Alcotest.test_case "node limit" `Quick test_node_limit;
        ] );
      ( "anytime",
        [
          Alcotest.test_case "zero budget returns the seed" `Quick
            test_budgeted_zero_budget_seed;
          Alcotest.test_case "generous budget completes" `Quick
            test_budgeted_completes_matches_optimum;
          Alcotest.test_case "hardness instance, tiny budget" `Quick
            test_budgeted_hardness_anytime;
          Alcotest.test_case "expired time budget" `Quick
            test_budgeted_time_budget;
          Alcotest.test_case "bad arguments are typed errors" `Quick
            test_budgeted_bad_args;
        ] );
      ( "knapsack",
        [
          Alcotest.test_case "accepts under capacity" `Quick
            test_knapsack_accepts_under_capacity;
          Alcotest.test_case "picks best subset" `Quick test_knapsack_picks_best_subset;
          Alcotest.test_case "rejects when energy dominates" `Quick
            test_knapsack_rejects_when_energy_dominates;
          prop_knapsack_matches_brute_force;
          prop_knapsack_choice_consistent;
          prop_scaled_feasible_and_bounded;
          Alcotest.test_case "scale for epsilon" `Quick test_scale_for_epsilon;
        ] );
    ]
