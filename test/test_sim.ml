(* Tests for rt_sim: frame schedules round-trip the optimizer's promises,
   and the EDF simulator agrees with the utilization-bound theory. *)

open Rt_power
open Rt_task
module Fc = Rt_prelude.Float_cmp
module Instance = Rt_check.Instance

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let cubic = Processor.cubic ()
let xscale_enable =
  Processor.xscale ~dormancy:(Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })
let levels = Processor.xscale_levels ~dormancy:Processor.Dormant_disable

let items_of weights =
  List.mapi (fun id w -> Task.item ~id ~weight:w ()) weights

let partition_of ~m buckets =
  let arr = Array.make m [] in
  List.iteri (fun j ws -> arr.(j) <- ws) buckets;
  Rt_partition.Partition.of_buckets arr

(* ------------------------------------------------------------------ *)
(* Frame_sim *)

let test_frame_build_single () =
  let items = items_of [ 0.3; 0.2 ] in
  let p = partition_of ~m:1 [ items ] in
  match Rt_sim.Frame_sim.build ~proc:cubic ~frame_length:10. p with
  | Error e -> Alcotest.fail e
  | Ok sim ->
      check_bool "validates" true (Rt_sim.Frame_sim.validate sim = Ok ());
      (* load 0.5 on a cubic processor: energy = 10 · 0.5^3 *)
      check_float 1e-9 "energy" (10. *. 0.125) sim.Rt_sim.Frame_sim.total_energy

let test_frame_build_overload () =
  let items = items_of [ 0.8; 0.8 ] in
  let p = partition_of ~m:1 [ items ] in
  check_bool "overload rejected" true
    (Result.is_error (Rt_sim.Frame_sim.build ~proc:cubic ~frame_length:1. p))

let test_frame_two_procs_levels () =
  (* discrete levels force two-speed splits inside the timeline *)
  let a = items_of [ 0.7 ] in
  let b = [ Task.item ~id:9 ~weight:0.5 () ] in
  let p = partition_of ~m:2 [ a; b ] in
  match Rt_sim.Frame_sim.build ~proc:levels ~frame_length:4. p with
  | Error e -> Alcotest.fail e
  | Ok sim ->
      check_bool "validates" true (Rt_sim.Frame_sim.validate sim = Ok ());
      check_int "two timelines" 2 (List.length sim.Rt_sim.Frame_sim.timelines)

let test_frame_energy_matches_rate () =
  (* slice-integrated energy equals horizon × optimal rate per bucket *)
  let items = items_of [ 0.25; 0.35; 0.15 ] in
  let p = partition_of ~m:1 [ items ] in
  match Rt_sim.Frame_sim.build ~proc:xscale_enable ~frame_length:7. p with
  | Error e -> Alcotest.fail e
  | Ok sim ->
      let rate =
        match Rt_speed.Energy_rate.rate xscale_enable ~u:0.75 with
        | Some r -> r
        | None -> Alcotest.fail "feasible"
      in
      check_float 1e-6 "energy = rate × horizon" (rate *. 7.)
        sim.Rt_sim.Frame_sim.total_energy

let test_frame_rejects_power_factor () =
  let it = Task.item ~power_factor:2. ~id:0 ~weight:0.1 () in
  let p = partition_of ~m:1 [ [ it ] ] in
  check_bool "hetero factor refused" true
    (Result.is_error (Rt_sim.Frame_sim.build ~proc:cubic ~frame_length:1. p))

let test_frame_gantt_renders () =
  let items = items_of [ 0.3; 0.2 ] in
  let p = partition_of ~m:2 [ [ List.hd items ]; List.tl items ] in
  match Rt_sim.Frame_sim.build ~proc:cubic ~frame_length:1. p with
  | Error e -> Alcotest.fail e
  | Ok sim ->
      let s = Rt_sim.Frame_sim.gantt sim in
      check_bool "non-empty gantt" true (String.length s > 0)

(* the shared rt_check generator produces the instance; LTF keeps only
   what fits, so the built schedule must always validate *)
let ltf_partition_of inst =
  match Instance.to_problem inst with
  | Error e -> invalid_arg e
  | Ok p ->
      let s = Rt_core.Greedy.ltf_reject p in
      (p, s.Rt_core.Solution.partition)

let prop_frame_roundtrip =
  qtest "random feasible partitions build and validate on all processors"
    (Instance.qcheck_gen ())
    (fun inst ->
      let proc = Instance.processor inst.Instance.proc in
      let _, part = ltf_partition_of inst in
      match
        Rt_sim.Frame_sim.build ~proc
          ~frame_length:(float_of_int inst.Instance.frame_ticks)
          part
      with
      | Error _ -> false
      | Ok sim -> Rt_sim.Frame_sim.validate sim = Ok ())

let prop_frame_slices_disjoint =
  qtest "per-processor slices are sorted, disjoint, and tile the frame"
    (Instance.qcheck_gen ())
    (fun inst ->
      let proc = Instance.processor inst.Instance.proc in
      let frame_length = float_of_int inst.Instance.frame_ticks in
      let _, part = ltf_partition_of inst in
      match Rt_sim.Frame_sim.build ~proc ~frame_length part with
      | Error _ -> false
      | Ok sim ->
          List.for_all
            (fun tl ->
              let rec contiguous at = function
                | [] -> Fc.approx_eq ~eps:1e-6 at frame_length
                | sl :: rest ->
                    Fc.approx_eq ~eps:1e-6 sl.Rt_sim.Frame_sim.t0 at
                    && Fc.leq sl.Rt_sim.Frame_sim.t0 sl.Rt_sim.Frame_sim.t1
                    && contiguous sl.Rt_sim.Frame_sim.t1 rest
              in
              contiguous 0. tl.Rt_sim.Frame_sim.slices)
            sim.Rt_sim.Frame_sim.timelines)

(* ------------------------------------------------------------------ *)
(* Edf_sim *)

let periodic_set =
  [
    Task.periodic ~id:0 ~cycles:10 ~period:100 ();
    Task.periodic ~id:1 ~cycles:50 ~period:200 ();
    Task.periodic ~id:2 ~cycles:100 ~period:500 ();
  ]
(* U = 0.1 + 0.25 + 0.2 = 0.55; hyper-period 1000 *)

let test_edf_feasible_at_utilization () =
  match Rt_sim.Edf_sim.run ~proc:cubic ~speed:0.55 periodic_set with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "no misses at s = U" true (o.Rt_sim.Edf_sim.misses = []);
      check_float 1e-6 "fully busy" 1000. o.Rt_sim.Edf_sim.busy_time;
      check_bool "no gaps when s = U" true (o.Rt_sim.Edf_sim.gaps = [])

let test_edf_feasible_above_utilization () =
  match Rt_sim.Edf_sim.run ~proc:cubic ~speed:0.8 periodic_set with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "no misses" true (o.Rt_sim.Edf_sim.misses = []);
      (* busy time scales as U/s × horizon *)
      check_float 1e-6 "busy time" (0.55 /. 0.8 *. 1000.) o.Rt_sim.Edf_sim.busy_time;
      check_bool "has idle gaps" true (o.Rt_sim.Edf_sim.gaps <> [])

let test_edf_misses_below_utilization () =
  match Rt_sim.Edf_sim.run ~proc:cubic ~speed:0.4 periodic_set with
  | Error e -> Alcotest.fail e
  | Ok o -> check_bool "misses under overload" true (o.Rt_sim.Edf_sim.misses <> [])

let test_edf_rejects_bad_args () =
  check_bool "zero speed" true
    (Result.is_error (Rt_sim.Edf_sim.run ~proc:cubic ~speed:0. periodic_set));
  check_bool "infeasible speed" true
    (Result.is_error (Rt_sim.Edf_sim.run ~proc:cubic ~speed:2. periodic_set));
  check_bool "empty set without horizon" true
    (Result.is_error (Rt_sim.Edf_sim.run ~proc:cubic ~speed:0.5 []));
  check_bool "empty set with horizon ok" true
    (Result.is_ok (Rt_sim.Edf_sim.run ~horizon:10. ~proc:cubic ~speed:0.5 []))

let test_edf_energy_accounting () =
  let proc =
    Processor.make
      ~model:(Power_model.make ~p_ind:0.1 ~coeff:1. ~alpha:3. ())
      ~domain:(Processor.Ideal { s_min = 0.; s_max = 1. })
      ~dormancy:(Processor.Dormant_enable { t_sw = 1.; e_sw = 2. })
  in
  match Rt_sim.Edf_sim.run ~proc ~speed:0.8 periodic_set with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let busy = o.Rt_sim.Edf_sim.busy_time in
      check_float 1e-6 "exec energy = busy × P(s)"
        (busy *. Power_model.power proc.Processor.model 0.8)
        o.Rt_sim.Edf_sim.exec_energy;
      let idle = 1000. -. busy in
      check_float 1e-6 "awake idle = leakage × idle" (0.1 *. idle)
        o.Rt_sim.Edf_sim.idle_energy_awake;
      check_bool "sleeping never beats staying awake by more than idle" true
        (Fc.leq o.Rt_sim.Edf_sim.idle_energy_sleep
           o.Rt_sim.Edf_sim.idle_energy_awake);
      check_bool "coalesced idle cheapest" true
        (Fc.leq o.Rt_sim.Edf_sim.idle_energy_proc
           o.Rt_sim.Edf_sim.idle_energy_sleep)

let test_edf_preemption_happens () =
  (* long task released at 0, short task with tighter deadlines preempts *)
  let tasks =
    [
      Task.periodic ~id:0 ~cycles:60 ~period:100 ();
      Task.periodic ~id:1 ~cycles:150 ~period:400 ();
    ]
  in
  match Rt_sim.Edf_sim.run ~proc:cubic ~speed:1.0 tasks with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "feasible" true (o.Rt_sim.Edf_sim.misses = []);
      check_bool "preemptions observed" true (o.Rt_sim.Edf_sim.preemptions > 0)

let prop_edf_utilization_bound =
  qtest "EDF at speed >= U never misses; at speed < U misses appear"
    QCheck2.Gen.(pair (int_range 1 6) (int_range 1 1000))
    (fun (n, seed) ->
      let rng = Rt_prelude.Rng.create ~seed in
      let tasks =
        Gen.periodic_tasks rng ~n ~total_util:0.7
          ~periods:[ 100; 200; 400; 500 ]
      in
      let u = Taskset.total_utilization tasks in
      let ok_at s =
        match Rt_sim.Edf_sim.run ~proc:cubic ~speed:s tasks with
        | Error _ -> None
        | Ok o -> Some (o.Rt_sim.Edf_sim.misses = [])
      in
      let feasible = ok_at (Float.min 1. (u +. 0.01)) in
      let overload = if u > 0.1 then ok_at (u *. 0.7) else Some false in
      feasible = Some true && overload = Some false)

let prop_edf_busy_time_identity =
  qtest ~count:60 "busy time equals U/s x horizon on feasible runs"
    QCheck2.Gen.(pair (int_range 1 10_000) (float_range 0.3 0.95))
    (fun (seed, speed) ->
      let rng = Rt_prelude.Rng.create ~seed in
      let tasks =
        Gen.periodic_tasks rng ~n:5 ~total_util:(speed *. 0.9)
          ~periods:[ 100; 200; 500 ]
      in
      let u = Taskset.total_utilization tasks in
      if u > speed then true
      else
        match Rt_sim.Edf_sim.run ~proc:cubic ~speed tasks with
        | Error _ -> false
        | Ok o ->
            let expected = u /. speed *. o.Rt_sim.Edf_sim.horizon in
            Fc.approx_eq ~eps:1e-6 o.Rt_sim.Edf_sim.busy_time expected
            &&
            (* gaps + busy tile the horizon *)
            let gap_total =
              List.fold_left
                (fun acc g -> acc +. (g.Rt_sim.Edf_sim.g1 -. g.Rt_sim.Edf_sim.g0))
                0. o.Rt_sim.Edf_sim.gaps
            in
            Fc.approx_eq ~eps:1e-6
              (gap_total +. o.Rt_sim.Edf_sim.busy_time)
              o.Rt_sim.Edf_sim.horizon)

let test_edf_gantt_renders () =
  match Rt_sim.Edf_sim.gantt ~proc:cubic ~speed:1.0 periodic_set with
  | Error e -> Alcotest.fail e
  | Ok s -> check_bool "gantt non-empty" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Gantt *)

let test_gantt_basic () =
  let segs =
    [
      { Rt_sim.Gantt.t0 = 0.; t1 = 5.; row = "A"; glyph = '#' };
      { Rt_sim.Gantt.t0 = 5.; t1 = 10.; row = "B"; glyph = '*' };
    ]
  in
  let out = Rt_sim.Gantt.render ~width:20 ~horizon:10. segs in
  let lines = String.split_on_char '\n' out in
  check_int "two rows + scale" 3 (List.length lines);
  check_bool "A row has #" true
    (String.contains (List.nth lines 0) '#');
  check_bool "B row has *" true (String.contains (List.nth lines 1) '*')

let test_gantt_rejects_out_of_range () =
  Alcotest.check_raises "outside horizon"
    (Invalid_argument "Gantt.render: segment outside horizon") (fun () ->
      ignore
        (Rt_sim.Gantt.render ~horizon:1.
           [ { Rt_sim.Gantt.t0 = 0.; t1 = 2.; row = "A"; glyph = '#' } ]))

let test_gantt_short_segment_survives () =
  (* a long later segment may not erase a short earlier one: both glyphs
     must stay visible even though they compete for the same first cell *)
  let out =
    Rt_sim.Gantt.render ~width:10 ~horizon:10.
      [
        { Rt_sim.Gantt.t0 = 0.; t1 = 0.01; row = "P0"; glyph = '#' };
        { Rt_sim.Gantt.t0 = 0.01; t1 = 10.; row = "P0"; glyph = '*' };
      ]
  in
  check_bool "short segment visible" true (String.contains out '#');
  check_bool "long segment visible" true (String.contains out '*')

let glyph_of_id id = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ".[id mod 36]

let prop_gantt_never_drops_accepted_tasks =
  qtest "frame gantt shows a glyph for every accepted task"
    (Instance.qcheck_gen ())
    (fun inst ->
      let proc = Instance.processor inst.Instance.proc in
      match Instance.to_problem inst with
      | Error _ -> false
      | Ok p -> (
          let s = Rt_core.Greedy.ltf_reject p in
          match
            Rt_sim.Frame_sim.build ~proc
              ~frame_length:(float_of_int inst.Instance.frame_ticks)
              s.Rt_core.Solution.partition
          with
          | Error _ -> false
          | Ok sim ->
              let out = Rt_sim.Frame_sim.gantt sim in
              List.for_all
                (fun id -> String.contains out (glyph_of_id id))
                (Rt_core.Solution.accepted_ids s)))

let () =
  Alcotest.run "rt_sim"
    [
      ( "frame_sim",
        [
          Alcotest.test_case "single processor build" `Quick
            test_frame_build_single;
          Alcotest.test_case "overload detected" `Quick test_frame_build_overload;
          Alcotest.test_case "levels, two processors" `Quick
            test_frame_two_procs_levels;
          Alcotest.test_case "energy matches rate" `Quick
            test_frame_energy_matches_rate;
          Alcotest.test_case "hetero factor refused" `Quick
            test_frame_rejects_power_factor;
          Alcotest.test_case "gantt renders" `Quick test_frame_gantt_renders;
          prop_frame_roundtrip;
          prop_frame_slices_disjoint;
        ] );
      ( "edf_sim",
        [
          Alcotest.test_case "feasible at U" `Quick test_edf_feasible_at_utilization;
          Alcotest.test_case "feasible above U" `Quick
            test_edf_feasible_above_utilization;
          Alcotest.test_case "misses below U" `Quick
            test_edf_misses_below_utilization;
          Alcotest.test_case "argument validation" `Quick test_edf_rejects_bad_args;
          Alcotest.test_case "energy accounting" `Quick test_edf_energy_accounting;
          Alcotest.test_case "preemption" `Quick test_edf_preemption_happens;
          prop_edf_utilization_bound;
          prop_edf_busy_time_identity;
          Alcotest.test_case "gantt renders" `Quick test_edf_gantt_renders;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "basic render" `Quick test_gantt_basic;
          Alcotest.test_case "range check" `Quick test_gantt_rejects_out_of_range;
          Alcotest.test_case "short segment survives" `Quick
            test_gantt_short_segment_survives;
          prop_gantt_never_drops_accepted_tasks;
        ] );
    ]
