(* Tests for the rt-lint engine: every rule gets must-flag fixtures and a
   must-pass fixture, plus suppression-pragma behavior.  Fixtures live in
   test/lint_fixtures/ and are deliberately excluded from the build and
   from the repo-wide lint walk. *)

open Rt_lint_core

let fixture name = Filename.concat "lint_fixtures" name

let rules_of path =
  Lint_core.lint_file ~as_lib:true (fixture path)
  |> List.map (fun (f : Lint_core.finding) -> f.Lint_core.rule)

let count rule rules = List.length (List.filter (String.equal rule) rules)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let flags path rule n () =
  check_int (path ^ " flags " ^ rule) n (count rule (rules_of path))

let clean path () =
  check_int (path ^ " is clean") 0 (List.length (rules_of path))

(* ------------------------------------------------------------------ *)
(* R4: missing-mli works on paths, not parsed sources *)

let test_missing_mli () =
  let bad name = fixture (Filename.concat "lib/r4_bad" name) in
  let good = fixture "lib/r4_good/paired.ml" in
  check_bool "lonely.ml flagged" true
    (Option.is_some (Lint_core.missing_mli (bad "lonely.ml")));
  check_bool "orphan.ml flagged" true
    (Option.is_some (Lint_core.missing_mli (bad "orphan.ml")));
  check_bool "paired.ml clean" true
    (Option.is_none (Lint_core.missing_mli good));
  check_bool "mli files never flagged" true
    (Option.is_none (Lint_core.missing_mli (good ^ "i")));
  match Lint_core.missing_mli (bad "lonely.ml") with
  | Some f -> Alcotest.(check string) "rule id" "missing-mli" f.Lint_core.rule
  | None -> Alcotest.fail "expected a finding"

(* ------------------------------------------------------------------ *)
(* the walk includes interface coverage and sorts deterministically *)

let test_lint_paths () =
  let findings = Lint_core.lint_paths [ fixture "lib" ] in
  let missing =
    List.filter
      (fun (f : Lint_core.finding) -> f.Lint_core.rule = "missing-mli")
      findings
  in
  check_int "two lonely modules" 2 (List.length missing);
  let sorted = List.sort Lint_core.compare_finding findings in
  check_bool "walk output already sorted" true (findings = sorted)

let test_diagnostic_format () =
  match Lint_core.lint_file ~as_lib:true (fixture "r5_bad_phys_eq.ml") with
  | [ f ] ->
      let s = Lint_core.to_string f in
      let prefix = fixture "r5_bad_phys_eq.ml" ^ ":2:" in
      check_bool "file:line:col prefix" true
        (String.length s > String.length prefix
        && String.sub s 0 (String.length prefix) = prefix);
      check_bool "bracketed rule id" true
        (String.length s > 0
        &&
        let re = "[phys-cmp]" in
        let rec contains i =
          i + String.length re <= String.length s
          && (String.sub s i (String.length re) = re || contains (i + 1))
        in
        contains 0)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_as_lib_scoping () =
  (* no-print and no-raise only apply to library code *)
  check_int "printf ignored outside lib" 0
    (count "no-print"
       (Lint_core.lint_file ~as_lib:false (fixture "r2_bad_printf.ml")
       |> List.map (fun (f : Lint_core.finding) -> f.Lint_core.rule)));
  check_int "failwith ignored outside lib" 0
    (count "no-raise"
       (Lint_core.lint_file ~as_lib:false (fixture "r3_bad_failwith.ml")
       |> List.map (fun (f : Lint_core.finding) -> f.Lint_core.rule)));
  (* float-cmp applies everywhere *)
  check_int "float-cmp still on outside lib" 2
    (count "float-cmp"
       (Lint_core.lint_file ~as_lib:false (fixture "r1_bad_literal.ml")
       |> List.map (fun (f : Lint_core.finding) -> f.Lint_core.rule)))

let test_suppression () =
  clean "suppress_good.ml" ();
  let rules = rules_of "suppress_bad.ml" in
  check_int "malformed pragma reported" 1 (count "suppression" rules);
  check_int "reasonless pragma does not suppress" 1 (count "phys-cmp" rules)

let () =
  Alcotest.run "rt_lint"
    [
      ( "float-cmp",
        [
          Alcotest.test_case "literals flagged" `Quick
            (flags "r1_bad_literal.ml" "float-cmp" 2);
          Alcotest.test_case "arith + compare flagged" `Quick
            (flags "r1_bad_arith.ml" "float-cmp" 2);
          Alcotest.test_case "Float_cmp usage clean" `Quick (clean "r1_good.ml");
        ] );
      ( "no-print",
        [
          Alcotest.test_case "printf flagged" `Quick
            (flags "r2_bad_printf.ml" "no-print" 2);
          Alcotest.test_case "print_/prerr_ flagged" `Quick
            (flags "r2_bad_print.ml" "no-print" 2);
          Alcotest.test_case "sprintf + Buffer clean" `Quick
            (clean "r2_good.ml");
          Alcotest.test_case "lib-only scoping" `Quick test_as_lib_scoping;
        ] );
      ( "no-raise",
        [
          Alcotest.test_case "failwith flagged" `Quick
            (flags "r3_bad_failwith.ml" "no-raise" 1);
          Alcotest.test_case "assert false flagged" `Quick
            (flags "r3_bad_assert.ml" "no-raise" 1);
          Alcotest.test_case "@raise doc clean" `Quick (clean "r3_good.ml");
        ] );
      ( "missing-mli",
        [
          Alcotest.test_case "path rule" `Quick test_missing_mli;
          Alcotest.test_case "walk integration" `Quick test_lint_paths;
        ] );
      ( "open-stdlib+phys-cmp",
        [
          Alcotest.test_case "top-level open flagged" `Quick
            (flags "r5_bad_open_stdlib.ml" "open-stdlib" 1);
          Alcotest.test_case "local open flagged" `Quick
            (flags "r5_bad_local_open.ml" "open-stdlib" 1);
          Alcotest.test_case "(==) flagged" `Quick
            (flags "r5_bad_phys_eq.ml" "phys-cmp" 1);
          Alcotest.test_case "(!=) flagged" `Quick
            (flags "r5_bad_phys_neq.ml" "phys-cmp" 1);
          Alcotest.test_case "structural compare clean" `Quick
            (clean "r5_good.ml");
        ] );
      ( "suppression",
        [
          Alcotest.test_case "reasoned pragmas suppress" `Quick
            test_suppression;
          Alcotest.test_case "diagnostic format" `Quick test_diagnostic_format;
        ] );
    ]
