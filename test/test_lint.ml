(* Tests for the rt-lint engine: every rule gets must-flag fixtures and a
   must-pass fixture, plus suppression-pragma behavior.  Fixtures live in
   test/lint_fixtures/ and are deliberately excluded from the build and
   from the repo-wide lint walk. *)

open Rt_lint_core

let fixture name = Filename.concat "lint_fixtures" name

let rules_of path =
  Lint_core.lint_file ~as_lib:true (fixture path)
  |> List.map (fun (f : Lint_core.finding) -> f.Lint_core.rule)

let count rule rules = List.length (List.filter (String.equal rule) rules)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let flags path rule n () =
  check_int (path ^ " flags " ^ rule) n (count rule (rules_of path))

let clean path () =
  check_int (path ^ " is clean") 0 (List.length (rules_of path))

(* ------------------------------------------------------------------ *)
(* R4: missing-mli works on paths, not parsed sources *)

let test_missing_mli () =
  let bad name = fixture (Filename.concat "lib/r4_bad" name) in
  let good = fixture "lib/r4_good/paired.ml" in
  check_bool "lonely.ml flagged" true
    (Option.is_some (Lint_core.missing_mli (bad "lonely.ml")));
  check_bool "orphan.ml flagged" true
    (Option.is_some (Lint_core.missing_mli (bad "orphan.ml")));
  check_bool "paired.ml clean" true
    (Option.is_none (Lint_core.missing_mli good));
  check_bool "mli files never flagged" true
    (Option.is_none (Lint_core.missing_mli (good ^ "i")));
  match Lint_core.missing_mli (bad "lonely.ml") with
  | Some f -> Alcotest.(check string) "rule id" "missing-mli" f.Lint_core.rule
  | None -> Alcotest.fail "expected a finding"

(* ------------------------------------------------------------------ *)
(* the walk includes interface coverage and sorts deterministically *)

let test_lint_paths () =
  let findings = Lint_core.lint_paths [ fixture "lib" ] in
  let missing =
    List.filter
      (fun (f : Lint_core.finding) -> f.Lint_core.rule = "missing-mli")
      findings
  in
  check_int "two lonely modules" 2 (List.length missing);
  let sorted = List.sort Lint_core.compare_finding findings in
  check_bool "walk output already sorted" true (findings = sorted)

let test_diagnostic_format () =
  match Lint_core.lint_file ~as_lib:true (fixture "r5_bad_phys_eq.ml") with
  | [ f ] ->
      let s = Lint_core.to_string f in
      let prefix = fixture "r5_bad_phys_eq.ml" ^ ":2:" in
      check_bool "file:line:col prefix" true
        (String.length s > String.length prefix
        && String.sub s 0 (String.length prefix) = prefix);
      check_bool "bracketed rule id" true
        (String.length s > 0
        &&
        let re = "[phys-cmp]" in
        let rec contains i =
          i + String.length re <= String.length s
          && (String.sub s i (String.length re) = re || contains (i + 1))
        in
        contains 0)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_as_lib_scoping () =
  (* no-print and no-raise only apply to library code *)
  check_int "printf ignored outside lib" 0
    (count "no-print"
       (Lint_core.lint_file ~as_lib:false (fixture "r2_bad_printf.ml")
       |> List.map (fun (f : Lint_core.finding) -> f.Lint_core.rule)));
  check_int "failwith ignored outside lib" 0
    (count "no-raise"
       (Lint_core.lint_file ~as_lib:false (fixture "r3_bad_failwith.ml")
       |> List.map (fun (f : Lint_core.finding) -> f.Lint_core.rule)));
  (* float-cmp applies everywhere *)
  check_int "float-cmp still on outside lib" 2
    (count "float-cmp"
       (Lint_core.lint_file ~as_lib:false (fixture "r1_bad_literal.ml")
       |> List.map (fun (f : Lint_core.finding) -> f.Lint_core.rule)))

let test_suppression () =
  clean "suppress_good.ml" ();
  let rules = rules_of "suppress_bad.ml" in
  check_int "malformed pragma reported" 1 (count "suppression" rules);
  check_int "reasonless pragma does not suppress" 1 (count "phys-cmp" rules)

(* ------------------------------------------------------------------ *)
(* typed rules: findings with exact locations *)

let findings_of path = Lint_core.lint_file ~as_lib:true (fixture path)

let locations rule path =
  findings_of path
  |> List.filter_map (fun (f : Lint_core.finding) ->
         if f.Lint_core.rule = rule then Some f.Lint_core.line else None)

let test_local_float () =
  (* the old Sig_table pass could not see locally-bound floats *)
  check_int "both local comparisons flagged" 2
    (count "float-cmp" (rules_of "typed_local_float.ml"));
  Alcotest.(check (list int))
    "at the comparison sites" [ 6; 10 ]
    (locations "float-cmp" "typed_local_float.ml")

let test_typed_poly_cmp () =
  let rules = rules_of "typed_poly_cmp.ml" in
  check_int "sort/hash/equality at float-bearing types" 3
    (count "poly-cmp" rules);
  check_int "nothing else flagged" 3 (List.length rules)

let test_typed_random () =
  let rules = rules_of "typed_random.ml" in
  check_int "self_init + ambient draw flagged" 2 (count "ambient-random" rules);
  check_int "explicit Random.State passes" 2 (List.length rules)

let test_typed_wallclock () =
  Alcotest.(check (list int))
    "Sys.time flagged at its site" [ 2 ]
    (locations "wallclock" "typed_wallclock.ml")

let test_attr_suppress () =
  (* three bad comparisons; exactly one is suppressed (the one whose
     attribute names the right rule) *)
  Alcotest.(check (list int))
    "suppression silences exactly one finding" [ 3; 8 ]
    (locations "float-cmp" "attr_suppress.ml")

(* ------------------------------------------------------------------ *)
(* units of measure *)

let test_dim_planted () =
  (* the frozen regression: seconds + joules must be rejected, at the
     addition's exact location *)
  Alcotest.(check (list int))
    "seconds+joules rejected where it happens" [ 6; 8 ]
    (locations "dim-mismatch" "dim_bad_add.ml");
  let msgs =
    findings_of "dim_bad_add.ml"
    |> List.map (fun (f : Lint_core.finding) -> f.Lint_core.msg)
  in
  check_bool "message names both dimensions" true
    (List.exists
       (fun m ->
         let has s =
           let n = String.length s in
           let rec go i =
             i + n <= String.length m && (String.sub m i n = s || go (i + 1))
           in
           go 0
         in
         has "seconds" && has "joules")
       msgs)

let test_dim_combination () = clean "dim_good.ml" ()

let test_dim_fields () =
  Alcotest.(check (list int))
    "mixed-dimension field addition rejected" [ 5 ]
    (locations "dim-mismatch" "dim_rec.ml")

(* ------------------------------------------------------------------ *)
(* concurrency: domain-safety and lock discipline *)

let test_conc_guarded_good () = clean "conc_guarded_good.ml" ()

let test_conc_unguarded_ref () =
  (* both the write and the read of the captured ref, at the spawn
     closure's line *)
  Alcotest.(check (list int))
    "unguarded cross-domain ref flagged" [ 8; 8 ]
    (locations "domain-unsafe" "conc_unguarded_ref.ml")

let test_conc_unbalanced () =
  (* one finding at each bad Mutex.lock: the raise-path section and the
     never-released lock *)
  Alcotest.(check (list int))
    "unbalanced critical sections flagged" [ 9; 13 ]
    (locations "lock-unbalanced" "conc_unbalanced_lock.ml")

let test_conc_lock_order () =
  Alcotest.(check (list int))
    "opposite nesting orders flagged at both inner locks" [ 7; 8 ]
    (locations "lock-order" "conc_lock_order.ml")

let test_conc_blocking () =
  Alcotest.(check (list int))
    "Domain.join under a lock flagged" [ 6 ]
    (locations "lock-blocking" "conc_blocking.ml")

let test_conc_cross_domain () =
  (* no visible spawn site: the [@rt.cross_domain] annotation makes the
     queued closure a crossing entry point *)
  Alcotest.(check (list int))
    "annotated queued closure analysed" [ 10 ]
    (locations "domain-unsafe" "conc_cross_domain.ml")

let test_conc_deque_race () =
  (* the seeded work-stealing bug: a lock-free [len] peek in [steal]
     racing every [push] — one finding, at the peek, nothing on the
     properly locked slow path *)
  Alcotest.(check (list int))
    "racy deque peek flagged at its exact line" [ 21 ]
    (locations "domain-unsafe" "conc_deque_race.ml");
  check_int "locked slow path stays clean" 1
    (List.length (findings_of "conc_deque_race.ml"))

let test_conc_suppress () = clean "conc_suppress.ml" ()

(* ------------------------------------------------------------------ *)
(* hot paths: allocation/boxing with call-graph hotness propagation *)

let severity_of rule path =
  match
    findings_of path
    |> List.filter (fun (f : Lint_core.finding) -> f.Lint_core.rule = rule)
  with
  | f :: _ -> f.Lint_core.severity
  | [] -> Alcotest.fail ("no " ^ rule ^ " finding in " ^ path)

let test_hot_boxed_float () =
  Alcotest.(check (list int))
    "float ref flagged at its allocation" [ 4 ]
    (locations "hot-boxed-float" "hot_boxed_float.ml");
  check_bool "boxing is a warning" true
    (severity_of "hot-boxed-float" "hot_boxed_float.ml" = Finding.Warning)

let test_hot_alloc_loop () =
  (* the annotated entry is two calls above the kernel: hotness reaches
     the allocating loop through an unannotated intermediate *)
  Alcotest.(check (list int))
    "per-iteration allocation flagged inside the loop" [ 8 ]
    (locations "hot-alloc-in-loop" "hot_alloc_loop.ml");
  check_bool "loop churn is a warning" true
    (severity_of "hot-alloc-in-loop" "hot_alloc_loop.ml" = Finding.Warning)

let test_hot_list_traversal () =
  Alcotest.(check (list int))
    "traversal noted at its call" [ 3 ]
    (locations "hot-list-traversal" "hot_list_traversal.ml");
  match findings_of "hot_list_traversal.ml" with
  | [ f ] ->
      check_bool "advisory severity" true (f.Lint_core.severity = Finding.Note);
      check_bool "notes do not gate" false (Finding.gates f)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_hot_budget_no_poll () =
  (* [drain_budgeted] never consults the clock: one error at its driver
     loop; [poll_budgeted] reads Clock in its condition and stays clean *)
  Alcotest.(check (list int))
    "witness at the clockless driver loop only" [ 18 ]
    (locations "budget-no-poll" "hot_budget_no_poll.ml");
  check_bool "missing poll is an error" true
    (severity_of "budget-no-poll" "hot_budget_no_poll.ml" = Finding.Error)

let test_hot_good () = clean "hot_good.ml" ()
let test_hot_cold_cut () = clean "hot_cold_cut.ml" ()

let test_conc_severity () =
  let sev rule path =
    match
      findings_of path
      |> List.filter (fun (f : Lint_core.finding) -> f.Lint_core.rule = rule)
    with
    | f :: _ -> f.Lint_core.severity
    | [] -> Alcotest.fail ("no " ^ rule ^ " finding in " ^ path)
  in
  check_bool "domain-unsafe is an error" true
    (sev "domain-unsafe" "conc_unguarded_ref.ml" = Finding.Error);
  check_bool "lock-unbalanced is a warning" true
    (sev "lock-unbalanced" "conc_unbalanced_lock.ml" = Finding.Warning);
  check_bool "errors and warnings gate" true
    (List.for_all Finding.gates (findings_of "conc_unbalanced_lock.ml"));
  check_bool "notes do not gate" false
    (Finding.gates
       (Finding.of_location ~severity:Finding.Note ~file:"x" ~rule:"r"
          ~msg:"m" Location.none))

let () =
  Alcotest.run "rt_lint"
    [
      ( "float-cmp",
        [
          Alcotest.test_case "literals flagged" `Quick
            (flags "r1_bad_literal.ml" "float-cmp" 2);
          Alcotest.test_case "arith + compare flagged" `Quick
            (flags "r1_bad_arith.ml" "float-cmp" 2);
          Alcotest.test_case "Float_cmp usage clean" `Quick (clean "r1_good.ml");
        ] );
      ( "no-print",
        [
          Alcotest.test_case "printf flagged" `Quick
            (flags "r2_bad_printf.ml" "no-print" 2);
          Alcotest.test_case "print_/prerr_ flagged" `Quick
            (flags "r2_bad_print.ml" "no-print" 2);
          Alcotest.test_case "sprintf + Buffer clean" `Quick
            (clean "r2_good.ml");
          Alcotest.test_case "lib-only scoping" `Quick test_as_lib_scoping;
        ] );
      ( "no-raise",
        [
          Alcotest.test_case "failwith flagged" `Quick
            (flags "r3_bad_failwith.ml" "no-raise" 1);
          Alcotest.test_case "assert false flagged" `Quick
            (flags "r3_bad_assert.ml" "no-raise" 1);
          Alcotest.test_case "@raise doc clean" `Quick (clean "r3_good.ml");
        ] );
      ( "missing-mli",
        [
          Alcotest.test_case "path rule" `Quick test_missing_mli;
          Alcotest.test_case "walk integration" `Quick test_lint_paths;
        ] );
      ( "open-stdlib+phys-cmp",
        [
          Alcotest.test_case "top-level open flagged" `Quick
            (flags "r5_bad_open_stdlib.ml" "open-stdlib" 1);
          Alcotest.test_case "local open flagged" `Quick
            (flags "r5_bad_local_open.ml" "open-stdlib" 1);
          Alcotest.test_case "(==) flagged" `Quick
            (flags "r5_bad_phys_eq.ml" "phys-cmp" 1);
          Alcotest.test_case "(!=) flagged" `Quick
            (flags "r5_bad_phys_neq.ml" "phys-cmp" 1);
          Alcotest.test_case "structural compare clean" `Quick
            (clean "r5_good.ml");
        ] );
      ( "suppression",
        [
          Alcotest.test_case "reasoned pragmas suppress" `Quick
            test_suppression;
          Alcotest.test_case "attributes silence exactly one" `Quick
            test_attr_suppress;
          Alcotest.test_case "diagnostic format" `Quick test_diagnostic_format;
        ] );
      ( "typed",
        [
          Alcotest.test_case "locally-bound floats flagged" `Quick
            test_local_float;
          Alcotest.test_case "poly compare at float-bearing types" `Quick
            test_typed_poly_cmp;
          Alcotest.test_case "ambient randomness flagged" `Quick
            test_typed_random;
          Alcotest.test_case "wall-clock reads flagged" `Quick
            test_typed_wallclock;
        ] );
      ( "dims",
        [
          Alcotest.test_case "planted seconds+joules rejected" `Quick
            test_dim_planted;
          Alcotest.test_case "products/quotients combine" `Quick
            test_dim_combination;
          Alcotest.test_case "record fields carry dims" `Quick test_dim_fields;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "guarded module clean" `Quick
            test_conc_guarded_good;
          Alcotest.test_case "unguarded cross-domain ref" `Quick
            test_conc_unguarded_ref;
          Alcotest.test_case "unbalanced lock on raise path" `Quick
            test_conc_unbalanced;
          Alcotest.test_case "inconsistent lock order" `Quick
            test_conc_lock_order;
          Alcotest.test_case "blocking call under lock" `Quick
            test_conc_blocking;
          Alcotest.test_case "[@rt.cross_domain] entry point" `Quick
            test_conc_cross_domain;
          Alcotest.test_case "racy deque fast path" `Quick
            test_conc_deque_race;
          Alcotest.test_case "pragma suppresses the race" `Quick
            test_conc_suppress;
          Alcotest.test_case "severities and gating" `Quick
            test_conc_severity;
        ] );
      ( "hot",
        [
          Alcotest.test_case "boxed float ref" `Quick test_hot_boxed_float;
          Alcotest.test_case "allocation under a propagated-hot loop" `Quick
            test_hot_alloc_loop;
          Alcotest.test_case "list traversal is advisory" `Quick
            test_hot_list_traversal;
          Alcotest.test_case "budgeted loop without a poll" `Quick
            test_hot_budget_no_poll;
          Alcotest.test_case "allocation-free kernel clean" `Quick
            test_hot_good;
          Alcotest.test_case "[@rt.cold] cuts propagation" `Quick
            test_hot_cold_cut;
        ] );
    ]
