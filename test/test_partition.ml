(* Tests for rt_partition: the partition container, the heuristics (LTF,
   RAND, fit family) and the heterogeneous-power (LEUF) solver. *)

open Rt_task
open Rt_partition
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let items_of weights =
  List.mapi (fun id w -> Task.item ~id ~weight:w ()) weights

(* ------------------------------------------------------------------ *)
(* Partition *)

let test_partition_basics () =
  let p = Partition.empty ~m:3 in
  check_int "m" 3 (Partition.m p);
  let it = Task.item ~id:5 ~weight:0.4 () in
  let p = Partition.add p 1 it in
  check_float 1e-12 "load" 0.4 (Partition.load p 1);
  check_float 1e-12 "makespan" 0.4 (Partition.makespan p);
  check_int "size" 1 (Partition.size p);
  Alcotest.(check (option int)) "processor_of" (Some 1) (Partition.processor_of p 5);
  Alcotest.(check (option int)) "missing item" None (Partition.processor_of p 6);
  check_int "min load index skips loaded" 0 (Partition.min_load_index p)

let test_partition_of_buckets_rejects_duplicates () =
  let it = Task.item ~id:1 ~weight:0.1 () in
  match Partition.of_buckets [| [ it ]; [ it ] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate ids must be rejected"

let test_equal_shape () =
  let a = Task.item ~id:0 ~weight:0.1 () in
  let b = Task.item ~id:1 ~weight:0.2 () in
  let p1 = Partition.of_buckets [| [ a; b ]; [] |] in
  let p2 = Partition.of_buckets [| [ b; a ]; [] |] in
  let p3 = Partition.of_buckets [| [ a ]; [ b ] |] in
  check_bool "order ignored" true (Partition.equal_shape p1 p2);
  check_bool "different placement" false (Partition.equal_shape p1 p3)

(* ------------------------------------------------------------------ *)
(* Heuristics *)

let test_ltf_balances () =
  (* 3,3,2,2,2 on 2 processors is the tight Graham instance: OPT = 6 but
     LPT gives 7 = (4/3 - 1/6)·6, exactly the bound *)
  let items = items_of [ 3.; 3.; 2.; 2.; 2. ] in
  let p = Heuristics.ltf ~m:2 items in
  check_float 1e-12 "tight Graham makespan" 7. (Partition.makespan p);
  check_int "all placed" 5 (Partition.size p);
  (* a genuinely balanced case *)
  let q = Heuristics.ltf ~m:2 (items_of [ 4.; 3.; 3.; 2. ]) in
  check_float 1e-12 "perfect balance" 6. (Partition.makespan q)

let test_unsorted_vs_ltf () =
  (* adversarial order makes the unsorted greedy strictly worse *)
  let items = items_of [ 2.; 2.; 2.; 3.; 3. ] in
  let ltf = Heuristics.ltf ~m:2 items in
  let unsorted = Heuristics.greedy_unsorted ~m:2 items in
  check_bool "ltf at least as good" true
    (Partition.makespan ltf <= Partition.makespan unsorted +. 1e-12)

(* brute-force optimal makespan with processor-symmetry breaking *)
let optimal_makespan ~m weights =
  let arr = Array.of_list weights in
  let loads = Array.make m 0. in
  let best = ref Float.infinity in
  let rec go i used =
    if i = Array.length arr then
      best := Float.min !best (Array.fold_left Float.max 0. loads)
    else
      for j = 0 to min (m - 1) used do
        loads.(j) <- loads.(j) +. arr.(i);
        if Array.fold_left Float.max 0. loads < !best then go (i + 1) (max used (j + 1));
        loads.(j) <- loads.(j) -. arr.(i)
      done
  in
  go 0 0;
  !best

let prop_ltf_graham_bound =
  qtest ~count:80 "LTF satisfies Graham's (4/3 - 1/3m) makespan bound vs OPT"
    QCheck2.Gen.(
      pair (int_range 1 3) (list_size (int_range 1 9) (float_range 0.1 1.)))
    (fun (m, weights) ->
      let items = items_of weights in
      let p = Heuristics.ltf ~m items in
      let opt = optimal_makespan ~m weights in
      let bound = (4. /. 3.) -. (1. /. (3. *. float_of_int m)) in
      Partition.makespan p <= (bound *. opt) +. 1e-9)

let prop_greedy_partitions_complete =
  qtest "greedy partitions place every item exactly once"
    QCheck2.Gen.(
      pair (int_range 1 6) (list_size (int_range 0 20) (float_range 0.05 1.)))
    (fun (m, weights) ->
      let items = items_of weights in
      let p = Heuristics.ltf ~m items in
      Partition.size p = List.length items
      && List.sort compare
           (List.map
              (fun (i : Task.item) -> i.Task.item_id)
              (Partition.all_items p))
         = List.sort compare (List.map (fun (i : Task.item) -> i.Task.item_id) items))

let test_random_is_a_partition () =
  let rng = Rt_prelude.Rng.create ~seed:4 in
  let items = items_of [ 0.1; 0.2; 0.3; 0.4 ] in
  let p = Heuristics.random rng ~m:3 items in
  check_int "all placed" 4 (Partition.size p)

let test_first_fit () =
  let items = items_of [ 0.6; 0.5; 0.4; 0.3 ] in
  let p, rejected = Heuristics.first_fit ~m:2 ~capacity:1.0 items in
  (* 0.6 -> P0; 0.5 -> P1; 0.4 -> P0; 0.3 -> P1 (0.4 would overflow P0) *)
  check_int "no rejections" 0 (List.length rejected);
  check_float 1e-12 "P0 load" 1.0 (Partition.load p 0);
  check_float 1e-12 "P1 load" 0.8 (Partition.load p 1);
  check_bool "capacity respected" true (Heuristics.capacity_respected ~capacity:1.0 p)

let test_first_fit_rejects () =
  let items = items_of [ 0.9; 0.9; 0.9 ] in
  let _, rejected = Heuristics.first_fit ~m:2 ~capacity:1.0 items in
  check_int "third does not fit" 1 (List.length rejected)

let test_best_worst_fit_differ () =
  let items = items_of [ 0.5; 0.3 ] in
  let bf, _ = Heuristics.best_fit ~m:2 ~capacity:1.0 items in
  let wf, _ = Heuristics.worst_fit ~m:2 ~capacity:1.0 items in
  (* best fit packs the second item with the first; worst fit spreads *)
  check_float 1e-12 "best fit stacks" 0.8 (Partition.makespan bf);
  check_float 1e-12 "worst fit spreads" 0.5 (Partition.makespan wf)

let prop_fit_respects_capacity =
  qtest "all fit heuristics respect capacity and account every item"
    QCheck2.Gen.(
      triple (int_range 1 5)
        (list_size (int_range 0 15) (float_range 0.05 1.4))
        (int_range 0 2))
    (fun (m, weights, which) ->
      let items = items_of weights in
      let fit =
        match which with
        | 0 -> Heuristics.first_fit
        | 1 -> Heuristics.best_fit
        | _ -> Heuristics.worst_fit
      in
      let p, rejected = fit ~m ~capacity:1.0 items in
      Heuristics.capacity_respected ~capacity:1.0 p
      && Partition.size p + List.length rejected = List.length items)

(* ------------------------------------------------------------------ *)
(* Hetero (LEUF substrate) *)

let hetero_proc =
  Rt_power.Processor.xscale ~dormancy:Rt_power.Processor.Dormant_disable

let hetero_items factors weights =
  List.mapi
    (fun id (f, w) -> Task.item ~power_factor:f ~id ~weight:w ())
    (List.combine factors weights |> List.map (fun (f, w) -> (f, w)))

let test_hetero_homogeneous_matches_common_speed () =
  (* with all factors 1 the per-task speeds collapse to the common speed *)
  let items = items_of [ 0.2; 0.3 ] in
  match Hetero.processor_speeds hetero_proc ~horizon:10. items with
  | None -> Alcotest.fail "feasible"
  | Some a ->
      List.iter
        (fun (_, s) -> check_float 1e-6 "common speed 0.5" 0.5 s)
        a.Hetero.speeds;
      check_float 1e-6 "time fills horizon" 10. a.Hetero.time_used

let test_hetero_factors_order_speeds () =
  (* hungrier tasks run slower: s_i ∝ f_i^(-1/alpha) *)
  let items = hetero_items [ 1.0; 8.0 ] [ 0.2; 0.2 ] in
  match Hetero.processor_speeds hetero_proc ~horizon:10. items with
  | None -> Alcotest.fail "feasible"
  | Some a -> (
      match a.Hetero.speeds with
      | [ (0, s0); (1, s1) ] ->
          check_bool "high-factor task slower" true (s1 < s0);
          (* f s^alpha equal across tasks: s0/s1 = 8^(1/3) = 2 *)
          check_float 1e-3 "KKT ratio" 2. (s0 /. s1)
      | _ -> Alcotest.fail "two speeds expected")

let test_hetero_infeasible () =
  let items = items_of [ 0.8; 0.8 ] in
  check_bool "over s_max infeasible" true
    (Hetero.processor_speeds hetero_proc ~horizon:1. items = None)

let test_hetero_energy_beats_common_speed () =
  (* with heterogeneous factors, per-task KKT speeds beat one common speed *)
  let items = hetero_items [ 0.5; 4.0 ] [ 0.3; 0.3 ] in
  match Hetero.processor_speeds hetero_proc ~horizon:1. items with
  | None -> Alcotest.fail "feasible"
  | Some a ->
      let common =
        (* both at speed 0.6: per-task energy = w/s · f·Pd(s), plus no
           leakage here (dormant-disable charges leakage separately) *)
        List.fold_left
          (fun acc (it : Task.item) ->
            acc
            +. (it.Task.weight /. 0.6
               *. (it.Task.item_power_factor
                  *. Rt_power.Power_model.dynamic_power
                       hetero_proc.Rt_power.Processor.model 0.6)))
          0. items
      in
      check_bool "KKT speeds no worse" true
        (Fc.leq ~eps:1e-9 a.Hetero.energy common)

let test_leuf_produces_feasible_partition () =
  let rng = Rt_prelude.Rng.create ~seed:12 in
  let items =
    Gen.items rng ~n:12 ~weight_lo:0.05 ~weight_hi:0.4
    |> Gen.heterogeneous_power_factors rng ~lo:0.5 ~hi:3.
  in
  let p = Hetero.leuf hetero_proc ~m:4 ~horizon:1. items in
  check_int "all items placed" 12 (Partition.size p);
  match Hetero.total_energy hetero_proc ~horizon:1. p with
  | Some e -> check_bool "finite energy" true (Float.is_finite e)
  | None -> Alcotest.fail "LEUF produced an infeasible partition"

let prop_estimated_times_capped =
  qtest "estimated execution times never exceed the horizon"
    QCheck2.Gen.(int_range 1 200)
    (fun seed ->
      let rng = Rt_prelude.Rng.create ~seed in
      let items =
        Gen.items rng ~n:8 ~weight_lo:0.05 ~weight_hi:0.6
        |> Gen.heterogeneous_power_factors rng ~lo:0.5 ~hi:2.
      in
      let times = Hetero.estimated_times hetero_proc ~m:3 ~horizon:5. items in
      List.length times = 8
      && List.for_all
           (fun (_, t) -> Fc.geq ~eps:1e-9 t 0. && Fc.leq ~eps:1e-9 t 5.)
           times)

(* ------------------------------------------------------------------ *)
(* Migration (McNaughton + migratory optimum) *)

let mig_proc = Rt_power.Processor.cubic ()

let test_migration_balanced () =
  (* total 1.0 on 2 processors, no dominant task: everything at 0.5 *)
  let items = items_of [ 0.4; 0.3; 0.3 ] in
  match Migration.optimal ~proc:mig_proc ~m:2 ~frame:10. items with
  | Error e -> Alcotest.fail e
  | Ok s ->
      List.iter (fun (_, sp) -> check_float 1e-6 "common speed" 0.5 sp) s.Migration.speeds;
      (* energy = W/s · P(s) = 10·1.0/0.5 · 0.125 = 2.5 *)
      check_float 1e-6 "energy" 2.5 s.Migration.energy;
      check_bool "validates" true
        (Migration.validate ~proc:mig_proc ~m:2 ~frame:10. items s = Ok ())

let test_migration_dominant_task () =
  (* w = 0.9 dominates the 0.5 average: it must run at 0.9, the rest
     slower — strictly better than a common speed of 0.9 *)
  let items = items_of [ 0.9; 0.1 ] in
  match Migration.optimal ~proc:mig_proc ~m:2 ~frame:1. items with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check_float 1e-6 "heavy at its weight" 0.9
        (List.assoc 0 s.Migration.speeds);
      check_bool "light one slower" true (List.assoc 1 s.Migration.speeds < 0.9);
      let common = 1.0 /. 0.9 *. (0.9 ** 3.) in
      check_bool "beats the common-speed schedule" true
        (s.Migration.energy < common -. 1e-9);
      check_bool "validates" true
        (Migration.validate ~proc:mig_proc ~m:2 ~frame:1. items s = Ok ())

let test_migration_infeasible () =
  check_bool "single item above s_max" true
    (Result.is_error
       (Migration.optimal ~proc:mig_proc ~m:4 ~frame:1. (items_of [ 1.2 ])));
  check_bool "total above capacity" true
    (Result.is_error
       (Migration.optimal ~proc:mig_proc ~m:2 ~frame:1.
          (items_of [ 0.9; 0.8; 0.8 ])))

let test_migration_empty () =
  match Migration.optimal ~proc:mig_proc ~m:3 ~frame:1. [] with
  | Ok s -> check_float 1e-12 "empty is free" 0. s.Migration.energy
  | Error e -> Alcotest.fail e

let prop_migration_wraparound_valid =
  qtest "wrap-around schedules validate on random feasible instances"
    QCheck2.Gen.(
      pair (int_range 1 5) (list_size (int_range 1 12) (float_range 0.05 0.8)))
    (fun (m, weights) ->
      let items = items_of weights in
      match Migration.optimal ~proc:mig_proc ~m ~frame:100. items with
      | Error _ ->
          (* only legitimate when genuinely infeasible *)
          let total = List.fold_left ( +. ) 0. weights in
          total /. float_of_int m > 1. -. 1e-9
          || List.exists (fun w -> w > 1. -. 1e-9) weights
      | Ok s -> Migration.validate ~proc:mig_proc ~m ~frame:100. items s = Ok ())

let prop_migration_lower_bounds_partition =
  qtest "the migratory optimum never exceeds a partitioned schedule's energy"
    QCheck2.Gen.(
      pair (int_range 1 4) (list_size (int_range 1 10) (float_range 0.05 0.5)))
    (fun (m, weights) ->
      let items = items_of weights in
      let part = Heuristics.ltf ~m items in
      if Rt_prelude.Float_cmp.gt (Partition.makespan part) 1. then true
      else begin
        let part_energy =
          Array.fold_left
            (fun acc u ->
              match Rt_speed.Energy_rate.energy mig_proc ~u ~horizon:100. with
              | Some e -> acc +. e
              | None -> Float.infinity)
            0.
            (Partition.loads part)
        in
        match Migration.energy_lower_bound ~proc:mig_proc ~m ~frame:100. items with
        | None -> false
        | Some lb -> Fc.leq ~eps:1e-6 lb part_energy
      end)

let () =
  Alcotest.run "rt_partition"
    [
      ( "partition",
        [
          Alcotest.test_case "basics" `Quick test_partition_basics;
          Alcotest.test_case "duplicate rejection" `Quick
            test_partition_of_buckets_rejects_duplicates;
          Alcotest.test_case "equal shape" `Quick test_equal_shape;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "ltf balances" `Quick test_ltf_balances;
          Alcotest.test_case "ltf vs unsorted" `Quick test_unsorted_vs_ltf;
          prop_ltf_graham_bound;
          prop_greedy_partitions_complete;
          Alcotest.test_case "random places all" `Quick test_random_is_a_partition;
          Alcotest.test_case "first fit" `Quick test_first_fit;
          Alcotest.test_case "first fit rejects" `Quick test_first_fit_rejects;
          Alcotest.test_case "best/worst fit" `Quick test_best_worst_fit_differ;
          prop_fit_respects_capacity;
        ] );
      ( "hetero",
        [
          Alcotest.test_case "homogeneous = common speed" `Quick
            test_hetero_homogeneous_matches_common_speed;
          Alcotest.test_case "KKT speed ordering" `Quick
            test_hetero_factors_order_speeds;
          Alcotest.test_case "infeasible detection" `Quick test_hetero_infeasible;
          Alcotest.test_case "beats common speed" `Quick
            test_hetero_energy_beats_common_speed;
          Alcotest.test_case "leuf feasible" `Quick
            test_leuf_produces_feasible_partition;
          prop_estimated_times_capped;
        ] );
      ( "migration",
        [
          Alcotest.test_case "balanced" `Quick test_migration_balanced;
          Alcotest.test_case "dominant task" `Quick test_migration_dominant_task;
          Alcotest.test_case "infeasible" `Quick test_migration_infeasible;
          Alcotest.test_case "empty" `Quick test_migration_empty;
          prop_migration_wraparound_valid;
          prop_migration_lower_bounds_partition;
        ] );
    ]
