(* Tests for rt_serve: the streaming admission service.

   The load-bearing property is byte-identity — with an unbounded queue,
   instantaneous decisions, no watchdog and no faults, [Serve.run] must
   produce exactly the outcome [Admission.simulate_mp] produces on the
   materialized stream. The batch simulator is the oracle; everything
   the robustness layer adds is then tested as a deviation from it. *)

open Rt_online
module Serve = Rt_serve.Serve
module Source = Rt_serve.Source
module Incident = Rt_serve.Incident

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float eps = Alcotest.(check (float eps))

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let job ~id ~arrival ~cycles ~deadline ~penalty =
  Job.make ~id ~arrival ~cycles ~deadline ~penalty

let stream ~seed ~n =
  let rng = Rt_prelude.Rng.create ~seed in
  Job.stream rng ~n ~rate:(1.4 /. 25.) ~s_max:1. ~mean_cycles:25.
    ~slack_lo:1.2 ~slack_hi:4. ~penalty_factor:1.3

let run_exn ~config source =
  match Serve.run ~proc ~config source with
  | Ok r -> r
  | Error e -> Alcotest.failf "serve: %s" (Admission.error_to_string e)

let simulate_exn ~m ~policy jobs =
  match Admission.simulate_mp ~proc ~m ~policy jobs with
  | Ok o -> o
  | Error e -> Alcotest.failf "simulate_mp: %s" (Admission.error_to_string e)

(* Byte-equality on outcomes: every float compared with [Float.equal],
   not a tolerance — "same calls in the same order" means the bits
   agree, and anything weaker would mask a divergence in the engine. *)
let outcome_equal (a : Admission.outcome) (b : Admission.outcome) =
  Float.equal a.energy b.energy
  && Float.equal a.penalty b.penalty
  && Float.equal a.total b.total
  && a.admitted = b.admitted
  && a.rejected = b.rejected
  && a.forced_rejections = b.forced_rejections
  && Float.equal a.makespan b.makespan

let pp_outcome o =
  Format.asprintf "energy=%h penalty=%h adm=%d rej=%d forced=%d mk=%h"
    o.Admission.energy o.Admission.penalty
    (List.length o.Admission.admitted)
    (List.length o.Admission.rejected)
    o.Admission.forced_rejections o.Admission.makespan

let check_oracle ~m ~policy jobs =
  let oracle = simulate_exn ~m ~policy jobs in
  let config = { Serve.default_config with policy; m } in
  let r = run_exn ~config (Source.of_list jobs) in
  if not (outcome_equal oracle r.Serve.outcome) then
    Alcotest.failf "serve diverged from oracle:\n  batch: %s\n  serve: %s"
      (pp_outcome oracle) (pp_outcome r.Serve.outcome);
  check_int "seen" (List.length jobs) r.Serve.seen;
  check_int "nothing shed" 0 r.Serve.shed;
  check_bool "no incidents" true (r.Serve.incidents = [])

(* ------------------------------------------------------------------ *)
(* Byte-identity with the batch oracle *)

let test_oracle_identity () =
  let jobs = stream ~seed:11 ~n:500 in
  check_oracle ~m:1 ~policy:Admission.Admit_all jobs;
  check_oracle ~m:1 ~policy:Admission.Profitable jobs;
  check_oracle ~m:1 ~policy:(Admission.Density_threshold 0.08) jobs;
  check_oracle ~m:3 ~policy:Admission.Profitable jobs

let test_oracle_identity_qcheck =
  qtest "serve = simulate_mp (no faults, unbounded queue)"
    QCheck2.Gen.(
      triple (int_range 0 1000) (int_range 1 4) (int_range 0 2))
    (fun (seed, m, policy_ix) ->
      let policy =
        match policy_ix with
        | 0 -> Admission.Admit_all
        | 1 -> Admission.Profitable
        | _ -> Admission.Density_threshold 0.05
      in
      let jobs = stream ~seed ~n:120 in
      let oracle = simulate_exn ~m ~policy jobs in
      let config = { Serve.default_config with policy; m } in
      let r = run_exn ~config (Source.of_list jobs) in
      outcome_equal oracle r.Serve.outcome)

let test_monitoring_is_transparent () =
  (* the overload detector observes but never decides: identity holds
     with it enabled *)
  let jobs = stream ~seed:12 ~n:400 in
  let oracle = simulate_exn ~m:1 ~policy:Admission.Profitable jobs in
  let config =
    {
      Serve.default_config with
      policy = Admission.Profitable;
      overload = Some { Serve.window = 100.; enter_above = 1.; exit_below = 0.75 };
    }
  in
  let r = run_exn ~config (Source.of_list jobs) in
  check_bool "outcome unchanged by monitoring" true
    (outcome_equal oracle r.Serve.outcome);
  check_bool "only overload incidents" true
    (List.for_all
       (fun i ->
         match Incident.label i with
         | "overload-on" | "overload-off" -> true
         | _ -> false)
       r.Serve.incidents)

(* ------------------------------------------------------------------ *)
(* Ingress backpressure: shed = cheapest penalty-per-cycle prefix *)

let test_backpressure_sheds_cheapest_prefix () =
  (* six jobs in a burst behind a slow decision server with capacity 3.
     Job 0 is decided immediately (the server is idle at its arrival);
     jobs 1..5 queue up, so pushes 4 and 5 each overflow the queue by
     one and must shed the cheapest penalty-per-cycle job then queued.
     Penalty rates ascend with id, so the shed set is exactly the
     two cheapest of the undecided jobs: ids 1 and 2. *)
  let jobs =
    List.init 6 (fun i ->
        job ~id:i
          ~arrival:(0.01 *. float_of_int i)
          ~cycles:10. ~deadline:10_000.
          ~penalty:(1. +. float_of_int i))
  in
  let config =
    {
      Serve.default_config with
      policy = Admission.Admit_all;
      queue_capacity = Some 3;
      decision_rate = Some 0.001;
    }
  in
  let r = run_exn ~config (Source.of_list jobs) in
  let shed_ids =
    List.filter_map
      (function
        | Incident.Shed { job_id; rate; at = _ } ->
            (* the ordering key recorded with the incident is the job's
               penalty per cycle *)
            let j = List.nth jobs job_id in
            check_float 1e-12 "shed rate"
              (j.Job.penalty /. j.Job.cycles)
              rate;
            Some job_id
        | _ -> None)
      r.Serve.incidents
  in
  (* the expected set, computed from the rule rather than hard-coded:
     the two cheapest penalty-per-cycle jobs among the undecided 1..5 *)
  let expected =
    List.filteri (fun i _ -> i > 0) jobs
    |> List.sort (fun (a : Job.t) (b : Job.t) ->
           compare
             (a.Job.penalty /. a.Job.cycles, a.Job.id)
             (b.Job.penalty /. b.Job.cycles, b.Job.id))
    |> List.filteri (fun i _ -> i < 2)
    |> List.map (fun (j : Job.t) -> j.Job.id)
  in
  Alcotest.(check (list int)) "shed = cheapest prefix" expected shed_ids;
  check_int "report.shed" 2 r.Serve.shed;
  (* shed jobs pay their penalty and appear among the rejected *)
  check_bool "shed are rejected" true
    (List.for_all (fun id -> List.mem id r.Serve.outcome.Admission.rejected)
       shed_ids);
  (* admitted work is never dropped by backpressure *)
  check_bool "admitted disjoint from shed" true
    (List.for_all
       (fun id -> not (List.mem id r.Serve.outcome.Admission.admitted))
       shed_ids)

let test_queue_latency_costs_slack () =
  (* a job decided after its deadline has passed cannot be admitted:
     the forced rejection is honest accounting, not a silent miss *)
  let jobs =
    [
      job ~id:0 ~arrival:0. ~cycles:10. ~deadline:10_000. ~penalty:1.;
      job ~id:1 ~arrival:0.5 ~cycles:10. ~deadline:2. ~penalty:5.;
    ]
  in
  let config =
    {
      Serve.default_config with
      policy = Admission.Admit_all;
      decision_rate = Some 0.1 (* one decision per 10 time units *);
    }
  in
  let r = run_exn ~config (Source.of_list jobs) in
  check_bool "expired job not admitted" true
    (not (List.mem 1 r.Serve.outcome.Admission.admitted));
  check_int "it is a forced rejection" 1
    r.Serve.outcome.Admission.forced_rejections;
  check_float 1e-9 "its penalty is paid" 5. r.Serve.outcome.Admission.penalty

(* ------------------------------------------------------------------ *)
(* Faults in flight: never a silent deadline miss *)

let test_fault_midstream_no_misses () =
  let jobs = stream ~seed:21 ~n:2_000 in
  let mid =
    (* strike halfway through the stream, by arrival time *)
    let arr = List.map (fun (j : Job.t) -> j.Job.arrival) jobs in
    List.nth arr (List.length arr / 2)
  in
  let config =
    {
      Serve.default_config with
      policy = Admission.Profitable;
      m = 2;
      faults =
        [
          { Rt_fault.Fault.at = mid;
            fault = Rt_fault.Fault.Speed_derate { factor = 0.5 } };
          { Rt_fault.Fault.at = mid +. 40.;
            fault = Rt_fault.Fault.Proc_crash { proc = 1; at = mid +. 40. } };
        ];
    }
  in
  (* Ok means the executor never reported an admitted deadline miss —
     re-planning shed or re-homed everything the faults endangered *)
  let r = run_exn ~config (Source.of_list jobs) in
  check_bool "incident log non-empty" true (r.Serve.incidents <> []);
  check_bool "fault incidents recorded" true
    (List.exists (fun i -> Incident.label i = "fault") r.Serve.incidents);
  (* the books still balance: every job is accounted exactly once *)
  check_int "admitted + rejected = seen"
    r.Serve.seen
    (List.length r.Serve.outcome.Admission.admitted
    + List.length r.Serve.outcome.Admission.rejected)

(* ------------------------------------------------------------------ *)
(* Structured miss report (the defensive error path) *)

let test_miss_error_is_structured () =
  (* bypass re-planning on purpose: inflate an admitted job's remaining
     cycles through the fault hook and advance without shedding — the
     executor must report a structured miss naming the job and the
     processor state, not a bare string *)
  let e =
    match Admission.Exec.create ~proc ~m:1 with
    | Ok e -> e
    | Error err -> Alcotest.failf "create: %s" (Admission.error_to_string err)
  in
  let j = job ~id:7 ~arrival:0. ~cycles:10. ~deadline:20. ~penalty:5. in
  (match Admission.Exec.decide e ~policy:Admission.Admit_all j with
  | Ok Admission.Admitted -> ()
  | Ok _ -> Alcotest.fail "job should be admitted"
  | Error err -> Alcotest.failf "decide: %s" (Admission.error_to_string err));
  check_bool "inflate hits the pending job" true
    (Admission.Exec.inflate e ~id:7 ~factor:100.);
  let result =
    match Admission.Exec.advance_to e ~until:2_000. with
    | Error err -> Error err
    | Ok () -> (
        match Admission.Exec.finish e with
        | Ok _ -> Ok ()
        | Error err -> Error err)
  in
  match result with
  | Error (Admission.Deadline_miss m) ->
      check_int "miss names the job" 7 m.Admission.job_id;
      check_float 1e-9 "miss carries the deadline" 20. m.Admission.deadline;
      check_bool "late completion is after the deadline" true
        (m.Admission.at > m.Admission.deadline);
      check_bool "pending set includes the job" true
        (List.mem 7 m.Admission.active_ids);
      check_bool "density shows the overload" true
        (m.Admission.density > Admission.Exec.speed_cap e);
      (* the job completed (late), so its own remaining work is zero;
         the snapshot must still be well-formed *)
      check_bool "backlog is non-negative and finite" true
        (m.Admission.backlog >= 0. && Float.is_finite m.Admission.backlog)
  | Error (Admission.Invalid msg) -> Alcotest.failf "unexpected: %s" msg
  | Ok () -> Alcotest.fail "un-replanned overrun must surface as a miss"

(* ------------------------------------------------------------------ *)
(* Sources: trace round-trip, ordering enforcement *)

let test_trace_round_trip () =
  let jobs = Job.by_arrival (stream ~seed:31 ~n:50) in
  let path = Filename.temp_file "rt_serve_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Source.write_trace path jobs with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "write_trace: %s" msg);
      let src =
        match Source.of_trace_file path with
        | Ok s -> s
        | Error msg -> Alcotest.failf "of_trace_file: %s" msg
      in
      let rec drain acc =
        match Source.next src with
        | Ok (Some j) -> drain (j :: acc)
        | Ok None -> List.rev acc
        | Error msg -> Alcotest.failf "next: %s" msg
      in
      let back = drain [] in
      check_int "count survives" (List.length jobs) (List.length back);
      List.iter2
        (fun (a : Job.t) (b : Job.t) ->
          check_int "id" a.Job.id b.Job.id;
          (* %.17g output: bit-exact floats on the way back *)
          check_bool "fields bit-exact" true
            (Float.equal a.Job.arrival b.Job.arrival
            && Float.equal a.Job.cycles b.Job.cycles
            && Float.equal a.Job.deadline b.Job.deadline
            && Float.equal a.Job.penalty b.Job.penalty))
        jobs back)

let test_trace_errors_carry_line_numbers () =
  let path = Filename.temp_file "rt_serve_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "# comment\n0 0.0 10.0 20.0 1.0\nnot a job\n";
      close_out oc;
      let src =
        match Source.of_trace_file path with
        | Ok s -> s
        | Error msg -> Alcotest.failf "of_trace_file: %s" msg
      in
      (match Source.next src with
      | Ok (Some j) -> check_int "good line parses" 0 j.Job.id
      | Ok None -> Alcotest.fail "expected a job"
      | Error msg -> Alcotest.failf "unexpected: %s" msg);
      match Source.next src with
      | Error msg ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec at i =
              i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
            in
            at 0
          in
          check_bool "error names line 3" true (contains msg "line 3")
      | Ok _ -> Alcotest.fail "malformed line must error")

let test_of_seq_rejects_regression () =
  let j0 = job ~id:0 ~arrival:5. ~cycles:1. ~deadline:10. ~penalty:0. in
  let j1 = job ~id:1 ~arrival:4. ~cycles:1. ~deadline:10. ~penalty:0. in
  let src = Source.of_seq (List.to_seq [ j0; j1 ]) in
  (match Source.next src with
  | Ok (Some j) -> check_int "first pull" 0 j.Job.id
  | _ -> Alcotest.fail "first pull should succeed");
  match Source.next src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arrival regression must error"

(* ------------------------------------------------------------------ *)
(* Sharded runs: deterministic for any pool size *)

let report_equal (a : Serve.report) (b : Serve.report) =
  outcome_equal a.Serve.outcome b.Serve.outcome
  && a.Serve.seen = b.Serve.seen
  && a.Serve.shed = b.Serve.shed
  && a.Serve.replan_shed = b.Serve.replan_shed
  && a.Serve.declined = b.Serve.declined
  && Float.equal a.Serve.lower_bound b.Serve.lower_bound

let test_sharded_deterministic () =
  let jobs = stream ~seed:41 ~n:600 in
  let config =
    { Serve.default_config with policy = Admission.Profitable }
  in
  let sequential =
    match Serve.run_sharded ~shards:3 ~proc ~config jobs with
    | Ok r -> r
    | Error e ->
        Alcotest.failf "sharded: %s" (Admission.error_to_string e)
  in
  let pooled =
    Rt_parallel.Pool.with_pool ~domains:2 (fun pool ->
        match Serve.run_sharded ~pool ~shards:3 ~proc ~config jobs with
        | Ok r -> r
        | Error e ->
            Alcotest.failf "sharded(pool): %s" (Admission.error_to_string e))
  in
  check_bool "pool size does not change the answer" true
    (report_equal sequential pooled);
  check_int "every job routed to exactly one shard"
    (List.length jobs) sequential.Serve.seen;
  (* id lists merge back sorted *)
  let sorted l = List.sort compare l = l in
  check_bool "admitted sorted" true
    (sorted sequential.Serve.outcome.Admission.admitted);
  check_bool "rejected sorted" true
    (sorted sequential.Serve.outcome.Admission.rejected)

let test_sharded_one_is_run () =
  let jobs = stream ~seed:42 ~n:300 in
  let config = { Serve.default_config with policy = Admission.Admit_all } in
  let direct = run_exn ~config (Source.of_list jobs) in
  match Serve.run_sharded ~shards:1 ~proc ~config jobs with
  | Ok r ->
      check_bool "shards=1 = run" true
        (outcome_equal direct.Serve.outcome r.Serve.outcome)
  | Error e -> Alcotest.failf "sharded: %s" (Admission.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Config validation *)

let test_config_validation () =
  let expect_invalid name config =
    match Serve.run ~proc ~config (Source.of_list []) with
    | Error (Admission.Invalid _) -> ()
    | Ok _ -> Alcotest.failf "%s should be rejected" name
    | Error (Admission.Deadline_miss _) ->
        Alcotest.failf "%s: wrong error class" name
  in
  expect_invalid "negative queue capacity"
    { Serve.default_config with queue_capacity = Some (-1) };
  expect_invalid "zero decision rate"
    { Serve.default_config with decision_rate = Some 0. };
  expect_invalid "non-finite latency budget"
    {
      Serve.default_config with
      watchdog = Some { Serve.latency_budget = infinity; recover_after = 8 };
    };
  expect_invalid "inverted hysteresis band"
    {
      Serve.default_config with
      overload = Some { Serve.window = 10.; enter_above = 0.5; exit_below = 0.9 };
    }

let () =
  Alcotest.run "rt_serve"
    [
      ( "oracle",
        [
          Alcotest.test_case "byte-identity, fixed cases" `Quick
            test_oracle_identity;
          test_oracle_identity_qcheck;
          Alcotest.test_case "monitoring is transparent" `Quick
            test_monitoring_is_transparent;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "shed = cheapest prefix" `Quick
            test_backpressure_sheds_cheapest_prefix;
          Alcotest.test_case "queue latency costs slack" `Quick
            test_queue_latency_costs_slack;
        ] );
      ( "faults",
        [
          Alcotest.test_case "mid-stream faults, no misses" `Quick
            test_fault_midstream_no_misses;
          Alcotest.test_case "miss error is structured" `Quick
            test_miss_error_is_structured;
        ] );
      ( "sources",
        [
          Alcotest.test_case "trace round-trip" `Quick test_trace_round_trip;
          Alcotest.test_case "trace errors carry line numbers" `Quick
            test_trace_errors_carry_line_numbers;
          Alcotest.test_case "of_seq rejects regression" `Quick
            test_of_seq_rejects_regression;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "deterministic across pool sizes" `Quick
            test_sharded_deterministic;
          Alcotest.test_case "shards=1 is run" `Quick test_sharded_one_is_run;
        ] );
      ( "config",
        [ Alcotest.test_case "validation" `Quick test_config_validation ] );
    ]
