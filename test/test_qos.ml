(* Tests for Rt_core.Qos: multi-level service degradation. *)

open Rt_task
open Rt_core
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let cubic = Rt_power.Processor.cubic ()

let problem_exn ~m =
  match Problem.make ~proc:cubic ~m ~horizon:100. [] with
  | Ok p -> p
  | Error e -> Alcotest.failf "problem: %s" e

let items_of specs =
  List.mapi (fun id (w, pen) -> Task.item ~penalty:pen ~id ~weight:w ()) specs

(* ------------------------------------------------------------------ *)

let test_menu_constructors () =
  let it = Task.item ~penalty:8. ~id:3 ~weight:0.6 () in
  let b = Qos.of_item it in
  check_int "binary menu" 2 (List.length b.Qos.levels);
  let g = Qos.graceful ~steps:4 it in
  check_int "graceful menu" 4 (List.length g.Qos.levels);
  (* first level = full service, last = full rejection *)
  (match g.Qos.levels with
  | first :: _ ->
      check_float 1e-9 "full weight" 0.6 first.Qos.weight;
      check_float 1e-9 "no penalty at full service" 0. first.Qos.level_penalty
  | [] -> Alcotest.fail "levels");
  (match List.rev g.Qos.levels with
  | last :: _ ->
      check_float 1e-9 "zero weight" 0. last.Qos.weight;
      check_float 1e-9 "full penalty" 8. last.Qos.level_penalty
  | [] -> Alcotest.fail "levels");
  (match Qos.qtask ~id:0 ~levels:[ Qos.level ~weight:1. ~penalty:0. ] with
  | _ -> ());
  match
    Qos.qtask ~id:0
      ~levels:[ Qos.level ~weight:1. ~penalty:0.; Qos.level ~weight:1. ~penalty:1. ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate weights must be rejected"

let test_greedy_light_load_full_service () =
  let p = problem_exn ~m:2 in
  let tasks = List.map (Qos.graceful ~steps:4) (items_of [ (0.3, 50.); (0.2, 40.) ]) in
  let s = Qos.greedy_degrade p tasks in
  check_bool "validates" true (Qos.validate p tasks s = Ok ());
  check_bool "everything at full service" true
    (List.for_all (fun c -> c.Qos.level_index = 0) s.Qos.choices)

let test_greedy_overload_degrades () =
  let p = problem_exn ~m:1 in
  (* total weight 1.8 on one unit processor: must shed at least 0.8 *)
  let tasks =
    List.map (Qos.graceful ~steps:5) (items_of [ (0.9, 30.); (0.9, 30.) ])
  in
  let s = Qos.greedy_degrade p tasks in
  check_bool "validates" true (Qos.validate p tasks s = Ok ());
  check_bool "someone degraded" true
    (List.exists (fun c -> c.Qos.level_index > 0) s.Qos.choices)

let test_cost_catches_mismatched_partition () =
  let p = problem_exn ~m:1 in
  (* penalty far above the energy: full service is chosen *)
  let tasks = List.map Qos.of_item (items_of [ (0.5, 500.) ]) in
  let s = Qos.greedy_degrade p tasks in
  check_int "full service chosen" 0 (List.hd s.Qos.choices).Qos.level_index;
  (* swap the partition for an empty one while claiming full service *)
  let broken =
    { s with Qos.partition = Rt_partition.Partition.empty ~m:1 }
  in
  check_bool "mismatch caught" true (Result.is_error (Qos.cost p tasks broken))

let prop_exhaustive_beats_greedy =
  qtest ~count:30 "exhaustive <= greedy on random graceful menus"
    QCheck2.Gen.(pair (int_range 1 5000) (float_range 0.8 2.0))
    (fun (seed, load) ->
      let rng = Rt_prelude.Rng.create ~seed in
      let items =
        Gen.items rng ~n:4 ~weight_lo:0.2 ~weight_hi:0.7
        |> Penalty.assign
             (Penalty.Proportional { factor = 1.2; jitter = 0.2 })
             rng ~proc:cubic ~horizon:100.
      in
      ignore load;
      let tasks = List.map (Qos.graceful ~steps:3) items in
      let p = problem_exn ~m:2 in
      let sg = Qos.greedy_degrade p tasks in
      let se = Qos.exhaustive p tasks in
      match (Qos.cost p tasks sg, Qos.cost p tasks se) with
      | Ok cg, Ok ce -> Fc.leq ~eps:1e-6 ce cg
      | _ -> false)

let prop_richer_menus_never_hurt =
  qtest ~count:30 "the multi-level optimum never exceeds the binary optimum"
    QCheck2.Gen.(int_range 1 5000)
    (fun seed ->
      let rng = Rt_prelude.Rng.create ~seed in
      let items =
        Gen.items rng ~n:4 ~weight_lo:0.3 ~weight_hi:0.8
        |> Penalty.assign
             (Penalty.Proportional { factor = 1.5; jitter = 0.2 })
             rng ~proc:cubic ~horizon:100.
      in
      let p = problem_exn ~m:1 in
      let binary = List.map Qos.of_item items in
      let multi = List.map (Qos.graceful ~steps:4) items in
      let cb = Qos.cost p binary (Qos.exhaustive p binary) in
      let cm = Qos.cost p multi (Qos.exhaustive p multi) in
      match (cb, cm) with
      | Ok b, Ok m -> Fc.leq ~eps:1e-6 m b
      | _ -> false)

let prop_greedy_solutions_validate =
  qtest ~count:40 "greedy degradation always yields a valid solution"
    QCheck2.Gen.(triple (int_range 1 10_000) (int_range 1 3) (int_range 2 6))
    (fun (seed, m, steps) ->
      let rng = Rt_prelude.Rng.create ~seed in
      let items =
        Gen.items rng ~n:8 ~weight_lo:0.1 ~weight_hi:0.9
        |> Penalty.assign
             (Penalty.Uniform { lo = 0.2; hi = 2. })
             rng ~proc:cubic ~horizon:100.
      in
      let tasks = List.map (Qos.graceful ~steps) items in
      let p = problem_exn ~m in
      let s = Qos.greedy_degrade p tasks in
      Qos.validate p tasks s = Ok ())

let () =
  Alcotest.run "rt_core_qos"
    [
      ( "qos",
        [
          Alcotest.test_case "menu constructors" `Quick test_menu_constructors;
          Alcotest.test_case "light load full service" `Quick
            test_greedy_light_load_full_service;
          Alcotest.test_case "overload degrades" `Quick
            test_greedy_overload_degrades;
          Alcotest.test_case "mismatched partition caught" `Quick
            test_cost_catches_mismatched_partition;
          prop_exhaustive_beats_greedy;
          prop_richer_menus_never_hurt;
          prop_greedy_solutions_validate;
        ] );
    ]
