(* Tests for rt_alloc: the synthesis model, the LP-based ROUNDING family,
   and the RS-LEUF / First-Fit processor-count minimizers. *)

open Rt_alloc
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let cubic_model = Rt_power.Power_model.make ~coeff:1. ~alpha:3. ()

let simple_types =
  [|
    Alloc.proc_type ~type_id:0 ~alloc_cost:1. ~model:cubic_model
      ~speeds:[| 0.5; 1.0 |];
    Alloc.proc_type ~type_id:1 ~alloc_cost:3. ~model:cubic_model
      ~speeds:[| 1.0; 2.0 |];
  |]

let simple_tasks =
  [
    Alloc.task ~id:0 ~cycles:[| 400.; 500. |];
    Alloc.task ~id:1 ~cycles:[| 600.; 700. |];
  ]

let instance_exn ?(budget = 1e6) () =
  match
    Alloc.instance ~types:simple_types ~tasks:simple_tasks ~frame:1000.
      ~energy_budget:budget
  with
  | Ok i -> i
  | Error e -> Alcotest.failf "instance: %s" e

(* ------------------------------------------------------------------ *)
(* model *)

let test_derived_quantities () =
  let inst = instance_exn () in
  let t0 = List.hd simple_tasks in
  (* type 0, slow speed 0.5: u = 400 / (0.5·1000) = 0.8 *)
  check_float 1e-9 "utilization" 0.8 (Alloc.utilization inst t0 ~ti:0 ~level:0);
  (* energy = 400/0.5 · P(0.5) = 800 · 0.125 = 100 *)
  check_float 1e-9 "energy" 100. (Alloc.energy inst t0 ~ti:0 ~level:0);
  Alcotest.(check (option int)) "kappa slow ok" (Some 0) (Alloc.kappa inst t0 ~ti:0)

let test_kappa_skips_infeasible_levels () =
  let types =
    [|
      Alloc.proc_type ~type_id:0 ~alloc_cost:1. ~model:cubic_model
        ~speeds:[| 0.2; 1.0 |];
    |]
  in
  let tasks = [ Alloc.task ~id:0 ~cycles:[| 500. |] ] in
  match Alloc.instance ~types ~tasks ~frame:1000. ~energy_budget:1e6 with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      (* at 0.2 the task would need 2500 time units: infeasible *)
      Alcotest.(check (option int))
        "kappa skips the slow level" (Some 1)
        (Alloc.kappa inst (List.hd tasks) ~ti:0)

let test_e_min_le_e_max () =
  let inst = instance_exn () in
  check_bool "e_min <= e_max" true (Alloc.e_min inst <= Alloc.e_max inst);
  check_bool "positive" true (Alloc.e_min inst > 0.)

let test_pack () =
  let inst = instance_exn () in
  let placements =
    [
      { Alloc.task_id = 0; ti = 0; level = 0 };
      { Alloc.task_id = 1; ti = 0; level = 1 };
    ]
  in
  match Alloc.pack inst placements with
  | Error e -> Alcotest.fail e
  | Ok b ->
      (* u = 0.8 and 0.6 on type 0: two processors, none of type 1 *)
      check_int "type 0 count" 2 b.Alloc.counts.(0);
      check_int "type 1 count" 0 b.Alloc.counts.(1);
      check_float 1e-9 "cost" 2. b.Alloc.alloc_cost

let test_pack_rejects_bad_placements () =
  let inst = instance_exn () in
  check_bool "missing task" true
    (Result.is_error (Alloc.pack inst [ { Alloc.task_id = 0; ti = 0; level = 0 } ]));
  check_bool "infeasible level" true
    (Result.is_error
       (Alloc.pack inst
          [
            { Alloc.task_id = 0; ti = 0; level = 0 };
            (* task 1 at speed 0.5 needs u = 1.2 > 1 *)
            { Alloc.task_id = 1; ti = 0; level = 0 };
          ]))

(* ------------------------------------------------------------------ *)
(* rounding *)

let gen_instance seed n_types n_tasks gamma =
  let rng = Rt_prelude.Rng.create ~seed in
  match Alloc.gen rng ~n_types ~n_tasks ~instance_gamma:gamma with
  | Ok i -> i
  | Error e -> Alcotest.failf "gen: %s" e

let test_rounding_small () =
  let inst = gen_instance 1 2 5 0.5 in
  match Rounding.rounding inst with
  | Error e -> Alcotest.fail e
  | Ok b ->
      check_bool "positive cost" true (b.Alloc.alloc_cost > 0.);
      check_int "places every task" 5 (List.length b.Alloc.placements)

let prop_e_rounding_no_worse =
  qtest "E-ROUNDING realized cost <= ROUNDING realized cost"
    QCheck2.Gen.(pair (int_range 1 2000) (float_range 0.1 0.9))
    (fun (seed, gamma) ->
      let inst = gen_instance seed 3 8 gamma in
      match (Rounding.rounding inst, Rounding.e_rounding inst) with
      | Ok r, Ok er -> Fc.leq ~eps:1e-9 er.Alloc.alloc_cost r.Alloc.alloc_cost
      | Error _, Error _ -> true (* both infeasible: consistent *)
      | _ -> false)

let prop_rounded_builds_are_valid =
  qtest "rounded placements re-pack identically (self-consistency)"
    QCheck2.Gen.(pair (int_range 1 2000) (float_range 0.1 0.9))
    (fun (seed, gamma) ->
      let inst = gen_instance seed 3 8 gamma in
      match Rounding.e_rounding inst with
      | Error _ -> true
      | Ok b -> (
          match Alloc.pack inst b.Alloc.placements with
          | Ok b2 ->
              Fc.approx_eq ~eps:1e-9 b2.Alloc.alloc_cost b.Alloc.alloc_cost
          | Error _ -> false))

let prop_lp_bound_below_builds =
  qtest "the LP bound never exceeds a realized build's cost"
    QCheck2.Gen.(pair (int_range 1 2000) (float_range 0.2 0.9))
    (fun (seed, gamma) ->
      let inst = gen_instance seed 2 6 gamma in
      match (Rounding.lp_lower_bound inst, Rounding.e_rounding inst) with
      | Some lb, Ok b -> Fc.leq ~eps:1e-6 lb b.Alloc.alloc_cost
      | None, Error _ -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* rs_leuf *)

let leaky_ideal =
  Rt_power.Processor.make
    ~model:(Rt_power.Power_model.make ~p_ind:0.08 ~coeff:1.52 ~alpha:3. ())
    ~domain:(Rt_power.Processor.Ideal { s_min = 0.; s_max = 1. })
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let items_of weights =
  List.mapi (fun id w -> Rt_task.Task.item ~id ~weight:w ()) weights

let test_pooled_min_processors () =
  (* total weight 1.5 at s_max 1: at least 2 processors regardless of
     energy *)
  let items = items_of [ 0.5; 0.5; 0.5 ] in
  match
    Rs_leuf.pooled_min_processors ~proc:leaky_ideal ~frame:1000. ~budget:1e9
      items
  with
  | Error e -> Alcotest.fail e
  | Ok (m, times) ->
      check_int "m*" 2 m;
      check_int "times for all" 3 (List.length times)

let test_budget_unreachable () =
  let items = items_of [ 0.5; 0.5 ] in
  check_bool "tiny budget" true
    (Result.is_error
       (Rs_leuf.pooled_min_processors ~proc:leaky_ideal ~frame:1000.
          ~budget:0.001 items))

let prop_rs_leuf_never_more_processors_than_ff =
  qtest "RS-LEUF allocates at most as many processors as First-Fit"
    QCheck2.Gen.(pair (int_range 1 2000) (float_range 0.3 0.9))
    (fun (seed, gamma) ->
      let rng = Rt_prelude.Rng.create ~seed in
      let n = Rt_prelude.Rng.int rng ~lo:3 ~hi:14 in
      let items =
        List.mapi
          (fun id w -> Rt_task.Task.item ~id ~weight:w ())
          (List.init n (fun _ -> Rt_prelude.Rng.float rng ~lo:0.05 ~hi:0.6))
      in
      (* budget between the loosest and a tight-but-feasible level *)
      let budget =
        let e_fast =
          List.fold_left
            (fun acc (it : Rt_task.Task.item) ->
              acc
              +. (it.Rt_task.Task.weight *. 1000.
                 *. Rt_power.Power_model.energy_per_cycle
                      (Rt_power.Power_model.make ~p_ind:0.08 ~coeff:1.52
                         ~alpha:3. ())
                      1.))
            0. items
        in
        gamma *. e_fast
      in
      match
        ( Rs_leuf.first_fit ~proc:leaky_ideal ~frame:1000. ~budget items,
          Rs_leuf.rs_leuf ~proc:leaky_ideal ~frame:1000. ~budget items )
      with
      | Ok ff, Ok rs ->
          rs.Rs_leuf.processors <= ff.Rs_leuf.processors
          && Fc.leq ~eps:1e-6 rs.Rs_leuf.energy budget
      | Error _, Error _ -> true
      | Ok _, Error _ -> false (* RS-LEUF must succeed whenever FF does *)
      | Error _, Ok _ -> true)

let test_rs_leuf_respects_budget () =
  let items = items_of [ 0.3; 0.25; 0.2; 0.15; 0.1 ] in
  (* the per-task minimum (everything at the critical speed) is ~403, so
     500 is feasible but tight enough to force extra processors *)
  match Rs_leuf.rs_leuf ~proc:leaky_ideal ~frame:1000. ~budget:500. items with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "within budget" true (Fc.leq ~eps:1e-6 o.Rs_leuf.energy 500.);
      check_bool "at least one processor" true (o.Rs_leuf.processors >= 1)

let () =
  Alcotest.run "rt_alloc"
    [
      ( "model",
        [
          Alcotest.test_case "derived quantities" `Quick test_derived_quantities;
          Alcotest.test_case "kappa skips infeasible" `Quick
            test_kappa_skips_infeasible_levels;
          Alcotest.test_case "e_min / e_max" `Quick test_e_min_le_e_max;
          Alcotest.test_case "pack" `Quick test_pack;
          Alcotest.test_case "pack rejects bad placements" `Quick
            test_pack_rejects_bad_placements;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "small instance" `Quick test_rounding_small;
          prop_e_rounding_no_worse;
          prop_rounded_builds_are_valid;
          prop_lp_bound_below_builds;
        ] );
      ( "rs_leuf",
        [
          Alcotest.test_case "pooled minimum" `Quick test_pooled_min_processors;
          Alcotest.test_case "budget unreachable" `Quick test_budget_unreachable;
          prop_rs_leuf_never_more_processors_than_ff;
          Alcotest.test_case "respects budget" `Quick test_rs_leuf_respects_budget;
        ] );
    ]
