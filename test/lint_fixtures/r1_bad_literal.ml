(* must flag: bare (<) against a float literal *)
let below_threshold x = x < 1.5

(* must flag: bare (=) against a float literal *)
let is_zero x = x = 0.
