val sum : float array -> float [@@rt.hot "fixture: annotated kernel"]
