(* Blocking while holding a lock: joining a domain inside a critical
   section stalls every other thread contending for the mutex.  Expect a
   [lock-blocking] finding. *)

let m = Mutex.create ()
let bad_join d = Mutex.protect m (fun () -> Domain.join d)
