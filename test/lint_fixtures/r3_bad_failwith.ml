(* must flag: failwith with no raise-doc and no suppression *)
let head = function [] -> failwith "empty" | x :: _ -> x
