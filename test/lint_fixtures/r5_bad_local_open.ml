(* must flag: local open Stdlib *)
let f () =
  let open Stdlib in
  succ 1
