val count : int list -> int [@@rt.hot "fixture: annotated kernel"]
