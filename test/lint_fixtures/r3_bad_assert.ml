(* must flag: assert false without a suppression pragma *)
let total = function Some x -> x | None -> assert false
