val sum_sq : float array -> int -> float -> float
[@@rt.hot "fixture: annotated kernel"]
