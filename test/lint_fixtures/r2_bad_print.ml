(* must flag: unqualified print_endline in lib code *)
let shout () = print_endline "done"

(* must flag: prerr_string in lib code *)
let complain () = prerr_string "oops"
