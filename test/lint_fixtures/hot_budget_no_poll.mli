val poll_budgeted : int -> int
val drain_budgeted : int -> int
