(* must-note: a full-list traversal on a hot path (advisory only) *)

let count (xs : int list) = List.length xs
