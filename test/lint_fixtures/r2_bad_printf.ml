(* must flag: Printf.printf inside lib code *)
let report x = Printf.printf "cost = %d\n" x

(* must flag: Format.printf inside lib code *)
let pretty x = Format.printf "%d@." x
