(* A closure stored into a queue for another domain to execute: the
   spawn site is invisible (plain Queue.add), so the closure carries
   [@rt.cross_domain] and the analysis treats it as a crossing entry
   point.  Expect a [domain-unsafe] finding on the Hashtbl access. *)

let shared = Hashtbl.create 16
let jobs : (unit -> unit) Queue.t = Queue.create ()

let submit () =
  Queue.add ((fun () -> Hashtbl.replace shared 1 2) [@rt.cross_domain]) jobs
