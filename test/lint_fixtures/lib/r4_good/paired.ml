(* must pass: ships a sibling interface *)
let answer = 42
