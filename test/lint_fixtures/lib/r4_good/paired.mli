val answer : int
