(* must flag: a second lib module with no sibling .mli *)
let greeting = "hello"
