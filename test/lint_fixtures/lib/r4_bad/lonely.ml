(* must flag: a lib module with no sibling .mli *)
let answer = 42
