(* must pass: products and quotients combine dimensions correctly, so every
   inferred dimension agrees with its interface annotation *)
let span = 4.0

let rate = 2.5

let energy = rate *. span

let speed = 3.0

let work = speed *. span

let per_cycle = energy /. work
