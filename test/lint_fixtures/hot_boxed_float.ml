(* must-flag: a float accumulator boxed in a ref on a hot path *)

let sum (xs : float array) =
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. x) xs;
  !acc
