val span : float [@rt.dim "seconds"]

val rate : float [@rt.dim "watts"]

val energy : float [@rt.dim "joules"]

val speed : float [@rt.dim "cycles/seconds"]

val work : float [@rt.dim "cycles"]

val per_cycle : float [@rt.dim "joules/cycles"]
