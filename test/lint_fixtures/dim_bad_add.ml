(* must flag: seconds + joules is dimensional nonsense (twice) *)
let horizon = 5.0

let fuel = 2.0

let nonsense = horizon +. fuel

let worst = Float.min horizon fuel
