(* A work-stealing deque with a racy fast path: [steal] peeks at the
   guarded [len] field before taking the lock, hoping to skip the mutex
   on empty deques.  The peek races every concurrent [push] — expect a
   [domain-unsafe] finding at exactly the unguarded read; the locked
   slow path below must stay clean. *)

type 'a t = {
  lock : Mutex.t;
  mutable items : 'a list; [@rt.guarded_by "lock"]
  mutable len : int; [@rt.guarded_by "lock"]
}

let make () = { lock = Mutex.create (); items = []; len = 0 }

let push t x =
  Mutex.protect t.lock (fun () ->
      t.items <- x :: t.items;
      t.len <- t.len + 1)

let steal t =
  if t.len = 0 then None (* racy peek: len read outside the lock *)
  else
    Mutex.protect t.lock (fun () ->
        match t.items with
        | [] -> None
        | x :: rest ->
            t.items <- rest;
            t.len <- t.len - 1;
            Some x)
