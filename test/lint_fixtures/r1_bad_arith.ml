(* must flag: both operands are float arithmetic *)
let dominated a b = (a +. b) >= (a *. b)

(* must flag: polymorphic compare on a float-returning function *)
let order a b = compare (sqrt a) (sqrt b)
