(* must-flag: per-iteration allocation in a kernel two calls below the
   annotated entry point — hotness propagates entry -> middle -> kernel
   even though neither [middle] nor [kernel] carries an annotation *)

let kernel n =
  let out = ref [] in
  for i = 0 to n - 1 do
    out := (i, i * i) :: !out
  done;
  !out

let middle n = kernel (n + 1)
let entry n = middle (n * 2)
