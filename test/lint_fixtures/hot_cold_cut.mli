val slow_path : int -> (int * int) list
[@@rt.cold "fixture: error-reporting path"]

val entry : int -> (int * int) list [@@rt.hot "fixture: annotated entry"]
