(* budget-no-poll: [drain_budgeted] loops without ever consulting the
   clock and must be flagged at its driver loop; [poll_budgeted] calls
   Clock.spent in the loop condition and must pass *)

module Clock = struct
  let spent () = 0
end

let poll_budgeted limit =
  let i = ref 0 in
  while !i < limit + Clock.spent () do
    incr i
  done;
  !i

let drain_budgeted limit =
  let i = ref 0 in
  while !i < limit do
    incr i
  done;
  !i
