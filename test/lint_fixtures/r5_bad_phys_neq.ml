(* must flag: physical inequality on immutable values *)
let differ a b = a != b
