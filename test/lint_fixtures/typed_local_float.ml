(* must flag: the float flows through local bindings the old parsetree
   name-heuristic pass could not see (regression for the Sig_table
   false negative) *)
let pick xs =
  let threshold = 1.5 in
  List.filter (fun x -> x < threshold) xs

let shadowed () =
  let margin = 0.25 in
  let probe y = margin > y in
  probe 0.5
