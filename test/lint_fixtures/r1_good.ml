(* must pass: tolerance routed through Float_cmp, ints compared bare *)
let close a b = Rt_prelude.Float_cmp.approx_eq a b

let le a b = Rt_prelude.Float_cmp.leq a b

let int_order (x : int) (y : int) = x < y

let cap a b = Float.min a b
