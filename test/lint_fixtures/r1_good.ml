(* must pass: tolerance routed through a Float_cmp-style helper (whose own
   bare comparisons carry expression-level suppressions), ints compared
   bare *)
module Float_cmp = struct
  let approx_eq a b = (Float.abs (a -. b) <= 1e-9) [@rt.lint.ignore "float-cmp"]
  let leq a b = (a -. b <= 1e-9) [@rt.lint.ignore "float-cmp"]
end

let close a b = Float_cmp.approx_eq a b

let le a b = Float_cmp.leq a b

let int_order (x : int) (y : int) = x < y

let cap a b = Float.min a b
