(* must pass: every finding is suppressed with a reasoned pragma *)

type cell = { mutable v : int }

(* lint: allow-phys-cmp "cells are mutable; identity is the intended key" *)
let same_cell (a : cell) (b : cell) = a == b

(* lint: allow-no-raise "unreachable: callers guarantee a non-empty list" *)
let first = function [] -> assert false | x :: _ -> x

(* lint: allow-no-print "sanctioned debug hook behind a flag" *)
let debug s = print_endline s
