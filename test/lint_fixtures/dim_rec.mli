type job = {
  span : float; [@rt.dim "seconds"]
  fuel : float; [@rt.dim "joules"]
}

val total : job -> float
