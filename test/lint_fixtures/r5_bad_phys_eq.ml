(* must flag: physical equality on immutable values *)
let same a b = a == b
