(* must flag: the pragma below is missing its mandatory reason string *)

(* lint: allow-phys-cmp *)
let same a b = a == b
