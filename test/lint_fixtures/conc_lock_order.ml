(* Two mutexes acquired in opposite nesting orders in the same unit: a
   lock-ordering deadlock waiting for contention.  Expect [lock-order]
   findings at both inner acquisitions. *)

let a = Mutex.create ()
let b = Mutex.create ()
let ab f = Mutex.protect a (fun () -> Mutex.protect b f)
let ba f = Mutex.protect b (fun () -> Mutex.protect a f)
