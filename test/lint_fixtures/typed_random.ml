(* must flag: ambient global Random state (twice); explicit Random.State
   threading must pass *)
let seed () = Random.self_init ()

let draw () = Random.float 1.0

let ok st = Random.State.float st 1.0
