val kernel : int -> (int * int) list
val middle : int -> (int * int) list
val entry : int -> (int * int) list [@@rt.hot "fixture: only the entry is annotated"]
