(* must flag: polymorphic comparison/hashing instantiated at float-bearing
   types, where bit-equality is not the domain's equality *)
let order (xs : (int * float) list) = List.sort compare xs

let key (x : float * int) = Hashtbl.hash x

let same (a : float option) (b : float option) = a = b

(* must pass: explicit per-field comparison *)
let by_id (a : int * float) (b : int * float) = Int.compare (fst a) (fst b)
