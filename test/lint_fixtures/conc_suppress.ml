(* The same race as conc_unguarded_ref, but acknowledged with a
   suppression pragma: the findings on the line below it must be
   filtered out.  Must produce no findings. *)

let total = ref 0

let spawn_add () =
  Domain.spawn (fun () ->
      (* lint: allow-domain-unsafe "single writer; torn reads acceptable in this demo" *)
      total := !total + 1)
