(* A correctly guarded cross-domain counter: every access to the
   mutable field happens inside the critical section of the mutex named
   by its [@rt.guarded_by] annotation.  Must produce no findings. *)

type t = { lock : Mutex.t; mutable hits : int [@rt.guarded_by "lock"] }

let make () = { lock = Mutex.create (); hits = 0 }

let spawn_incr t =
  Domain.spawn (fun () ->
      Mutex.protect t.lock (fun () -> t.hits <- t.hits + 1))

let read t = Mutex.protect t.lock (fun () -> t.hits)
