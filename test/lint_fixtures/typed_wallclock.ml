(* must flag: a wall-clock read inside library code *)
let stamp () = Sys.time ()
