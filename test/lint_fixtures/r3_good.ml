(** Pops the first element.
    @raise Failure on the empty list. *)
let pop = function [] -> failwith "pop: empty" | x :: _ -> x

let safe = function [] -> None | x :: _ -> Some x
