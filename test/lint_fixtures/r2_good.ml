(* must pass: sprintf and Buffer build strings without printing *)
let render x = Printf.sprintf "cost = %d" x

let concat parts =
  let buf = Buffer.create 64 in
  List.iter (Buffer.add_string buf) parts;
  Buffer.contents buf
