(* must end with exactly one finding: the second comparison carries an
   [@rt.lint.ignore] attribute, the first does not *)
let too_low x = x < 1.0

let also_low x = (x < 1.0) [@rt.lint.ignore "float-cmp"]

(* a suppression naming a different rule must not silence anything *)
let still_flagged x = (x > 2.0) [@rt.lint.ignore "phys-cmp"]
