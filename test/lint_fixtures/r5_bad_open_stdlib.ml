(* must flag: top-level open Stdlib *)
open Stdlib

let x = abs 3
