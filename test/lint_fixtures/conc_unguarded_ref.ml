(* A module-level ref mutated from a spawned domain with no Atomic, no
   [@rt.guarded_by] and no [@rt.domain_safe]: the canonical data race
   OCaml 5 will not reject.  Expect [domain-unsafe] findings on both the
   write and the read. *)

let total = ref 0

let spawn_add () = Domain.spawn (fun () -> total := !total + 1)
