(* Lock-discipline violations: a bare critical section that can raise
   before its unlock, and a lock never released at all.  Expect two
   [lock-unbalanced] findings, one at each Mutex.lock. *)

let m = Mutex.create ()
let work () = failwith "boom"

let bad () =
  Mutex.lock m;
  work ();
  Mutex.unlock m

let leak () = Mutex.lock m
