(* must flag: the two record fields carry different dimensions, so adding
   them is meaningless *)
type job = { span : float; fuel : float }

let total j = j.span +. j.fuel
