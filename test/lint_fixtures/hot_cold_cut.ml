(* must-pass: [@rt.cold] on the helper cuts hotness propagation before
   its allocating loop, even though the hot entry calls it *)

let slow_path n =
  let out = ref [] in
  for i = 0 to n - 1 do
    out := (i, i + 1) :: !out
  done;
  !out

let entry n = slow_path n
