(* must pass: structural comparison and ordinary opens *)
open List

let same (a : int) (b : int) = Stdlib.( = ) a b

let len xs = length xs
