(* must-pass: a hot kernel in allocation-free style — unboxed float
   accumulator, flat float-array access, tail recursion *)

let rec sum_sq (xs : float array) i acc =
  if i >= Array.length xs then acc
  else sum_sq xs (i + 1) (acc +. (xs.(i) *. xs.(i)))
