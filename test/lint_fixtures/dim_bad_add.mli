val horizon : float [@rt.dim "seconds"]

val fuel : float [@rt.dim "joules"]

val nonsense : float

val worst : float
