(* Tests for rt_fault: scenario accessors and validation, injected
   simulation semantics, and the degradation policies' recovery
   guarantees on small deterministic instances. *)

open Rt_power
open Rt_task
open Rt_fault

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_ids = Alcotest.(check (list int))

let xscale =
  Processor.xscale ~dormancy:(Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let levels = Processor.xscale_levels ~dormancy:Processor.Dormant_disable

let items_of weights =
  List.mapi (fun id w -> Task.item ~id ~weight:w ~penalty:1. ()) weights

let ok_exn = function Ok v -> v | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Fault scenarios *)

let test_scenario_accessors () =
  let sc =
    [
      Fault.Wcec_overrun { task_id = 3; factor = 1.5 };
      Fault.Wcec_overrun { task_id = 3; factor = 2. };
      Fault.Proc_crash { proc = 1; at = 5. };
      Fault.Proc_crash { proc = 1; at = 2. };
      Fault.Speed_derate { factor = 0.9 };
      Fault.Speed_derate { factor = 0.8 };
    ]
  in
  check_float 1e-12 "overrun composes" 3. (Fault.overrun_factor sc 3);
  check_float 1e-12 "no overrun" 1. (Fault.overrun_factor sc 0);
  check_bool "earliest crash wins" true (Fault.crash_time sc 1 = Some 2.);
  check_bool "no crash" true (Fault.crash_time sc 0 = None);
  check_float 1e-12 "harshest derate wins" 0.8 (Fault.derate sc);
  check_ids "survivors" [ 0; 2 ] (Fault.surviving sc ~m:3);
  check_bool "valid" true (Fault.validate ~m:3 sc = Ok ())

let test_scenario_validate_rejects () =
  let bad sc = Result.is_error (Fault.validate ~m:2 sc) in
  check_bool "zero overrun" true
    (bad [ Fault.Wcec_overrun { task_id = 0; factor = 0. } ]);
  check_bool "nan overrun" true
    (bad [ Fault.Wcec_overrun { task_id = 0; factor = Float.nan } ]);
  check_bool "proc out of range" true
    (bad [ Fault.Proc_crash { proc = 2; at = 1. } ]);
  check_bool "negative crash time" true
    (bad [ Fault.Proc_crash { proc = 0; at = -1. } ]);
  check_bool "derate above 1" true
    (bad [ Fault.Speed_derate { factor = 1.1 } ])

let test_derated_proc_ideal () =
  let sc = [ Fault.Speed_derate { factor = 0.5 } ] in
  let p = ok_exn (Fault.derated_proc sc xscale) in
  check_float 1e-9 "s_max halved" 0.5 (Processor.s_max p)

let test_derated_proc_levels () =
  (* xscale levels: 0.15 0.4 0.6 0.8 1.0; derate 0.7 keeps up to 0.6 *)
  let sc = [ Fault.Speed_derate { factor = 0.7 } ] in
  let p = ok_exn (Fault.derated_proc sc levels) in
  check_float 1e-9 "top surviving level" 0.6 (Processor.s_max p);
  let sc_kill = [ Fault.Speed_derate { factor = 0.1 } ] in
  check_bool "all levels lost is an error" true
    (Result.is_error (Fault.derated_proc sc_kill levels))

let test_gen_deterministic () =
  let draw () =
    let rng = Rt_prelude.Rng.create ~seed:42 in
    Fault.gen rng
      { Fault.overrun_prob = 0.5; overrun_factor = 1.5; crash_prob = 0.5;
        derate_prob = 0.5; derate_factor = 0.8 }
      ~task_ids:[ 0; 1; 2; 3 ] ~m:3 ~horizon:100.
  in
  check_bool "same seed, same scenario" true (draw () = draw ());
  (* never crashes every processor *)
  for seed = 0 to 50 do
    let rng = Rt_prelude.Rng.create ~seed in
    let sc =
      Fault.gen rng
        { Fault.overrun_prob = 0.; overrun_factor = 1.5; crash_prob = 1.;
          derate_prob = 0.; derate_factor = 0.8 }
        ~task_ids:[] ~m:4 ~horizon:10.
    in
    check_bool "a survivor remains" true (Fault.surviving sc ~m:4 <> [])
  done

(* ------------------------------------------------------------------ *)
(* Injected frame simulation *)

let frame_sim ~proc ~m ~frame_length buckets =
  let arr = Array.make m [] in
  List.iteri (fun j b -> arr.(j) <- b) buckets;
  ok_exn
    (Rt_sim.Frame_sim.build ~proc ~frame_length
       (Rt_partition.Partition.of_buckets arr))

let test_frame_injection_identity () =
  let sim = frame_sim ~proc:xscale ~m:2 ~frame_length:10.
      [ items_of [ 0.3; 0.2 ]; [ Task.item ~id:5 ~weight:0.4 () ] ]
  in
  let rep =
    ok_exn (Rt_sim.Frame_sim.run_injected ~inject:Rt_sim.Frame_sim.no_injection sim)
  in
  check_ids "no misses" [] rep.Rt_sim.Frame_sim.missed;
  check_float 1e-6 "nominal energy" sim.Rt_sim.Frame_sim.total_energy
    rep.Rt_sim.Frame_sim.faulty_energy;
  check_float 1e-12 "no dead time" 0. rep.Rt_sim.Frame_sim.dead_time

let test_frame_injection_crash () =
  let sim = frame_sim ~proc:xscale ~m:2 ~frame_length:10.
      [ items_of [ 0.5 ]; [ Task.item ~id:7 ~weight:0.5 () ] ]
  in
  (* processor 0 dies at t=0: its only task cannot run *)
  let rep =
    ok_exn
      (Rt_sim.Frame_sim.run_injected
         ~inject:
           { Rt_sim.Frame_sim.no_injection with crash = (fun j -> if j = 0 then Some 0. else None) }
         sim)
  in
  check_ids "task on crashed proc misses" [ 0 ] rep.Rt_sim.Frame_sim.missed;
  check_float 1e-12 "dead time is the whole frame" 10.
    rep.Rt_sim.Frame_sim.dead_time

let test_frame_injection_overrun () =
  let sim = frame_sim ~proc:xscale ~m:1 ~frame_length:10.
      [ items_of [ 0.5; 0.3 ] ]
  in
  (* task 0 needs 1.5x its cycles; the plan only delivers 1.0x *)
  let rep =
    ok_exn
      (Rt_sim.Frame_sim.run_injected
         ~inject:
           { Rt_sim.Frame_sim.no_injection with
             overrun = (fun id -> if id = 0 then 1.5 else 1.) }
         sim)
  in
  check_ids "overrun task misses" [ 0 ] rep.Rt_sim.Frame_sim.missed

let test_frame_injection_derate () =
  let sim = frame_sim ~proc:xscale ~m:1 ~frame_length:10.
      [ items_of [ 0.8 ] ]
  in
  (* plan runs at 0.8; capped to 0.4 only half the cycles arrive *)
  let rep =
    ok_exn
      (Rt_sim.Frame_sim.run_injected
         ~inject:{ Rt_sim.Frame_sim.no_injection with speed_cap = Some 0.4 }
         sim)
  in
  check_ids "derated task misses" [ 0 ] rep.Rt_sim.Frame_sim.missed;
  (match rep.Rt_sim.Frame_sim.delivered with
  | [ (0, cycles) ] -> check_float 1e-6 "half the cycles" 4. cycles
  | _ -> Alcotest.fail "unexpected delivered shape");
  check_bool "validation rejects bad factors" true
    (Result.is_error
       (Rt_sim.Frame_sim.run_injected
          ~inject:{ Rt_sim.Frame_sim.no_injection with speed_cap = Some 0. }
          sim))

(* ------------------------------------------------------------------ *)
(* Injected EDF simulation *)

let periodic_tasks =
  [
    Task.periodic ~id:0 ~cycles:2 ~period:10 ~penalty:1. ();
    Task.periodic ~id:1 ~cycles:3 ~period:20 ~penalty:1. ();
  ]

let test_edf_injection_identity () =
  let base =
    ok_exn (Rt_sim.Edf_sim.run ~proc:xscale ~speed:0.5 periodic_tasks)
  in
  let inj =
    ok_exn
      (Rt_sim.Edf_sim.run_injected ~proc:xscale ~speed:0.5
         ~inject:Rt_sim.Edf_sim.no_injection periodic_tasks)
  in
  check_int "same misses" 0 (List.length inj.Rt_sim.Edf_sim.misses);
  check_float 1e-9 "same busy time" base.Rt_sim.Edf_sim.busy_time
    inj.Rt_sim.Edf_sim.busy_time;
  check_float 1e-9 "same energy" base.Rt_sim.Edf_sim.exec_energy
    inj.Rt_sim.Edf_sim.exec_energy

let test_edf_injection_crash () =
  (* crash at t=0: every job within the horizon misses *)
  let o =
    ok_exn
      (Rt_sim.Edf_sim.run_injected ~proc:xscale ~speed:0.5
         ~inject:{ Rt_sim.Edf_sim.no_injection with crash_at = Some 0. }
         periodic_tasks)
  in
  (* hyper-period 20: task 0 has 2 jobs, task 1 has 1 *)
  check_int "all jobs miss" 3 (List.length o.Rt_sim.Edf_sim.misses);
  check_float 1e-12 "nothing executed" 0. o.Rt_sim.Edf_sim.busy_time

let test_edf_injection_overrun_feasible () =
  (* utilization 0.35; 1.5x overrun needs 0.525 <= speed 0.6: still meets *)
  let o =
    ok_exn
      (Rt_sim.Edf_sim.run_injected ~proc:xscale ~speed:0.6
         ~inject:{ Rt_sim.Edf_sim.no_injection with overrun = (fun _ -> 1.5) }
         periodic_tasks)
  in
  check_int "no misses under absorbed overrun" 0
    (List.length o.Rt_sim.Edf_sim.misses)

let test_edf_injection_derate_misses () =
  (* utilization 0.35 at commanded speed 0.4 is fine; capped to 0.2 the
     processor is overloaded and misses appear *)
  let o =
    ok_exn
      (Rt_sim.Edf_sim.run_injected ~proc:xscale ~speed:0.4
         ~inject:{ Rt_sim.Edf_sim.no_injection with speed_cap = Some 0.2 }
         periodic_tasks)
  in
  check_bool "misses under derating" true (o.Rt_sim.Edf_sim.misses <> [])

(* ------------------------------------------------------------------ *)
(* Degradation policies *)

let frame_problem () =
  (* 6 items, 2 processors, load 1.2/2.0 = comfortable *)
  let items = items_of [ 0.5; 0.4; 0.3; 0.25; 0.25; 0.2 ] in
  ok_exn (Rt_core.Problem.make ~proc:xscale ~m:2 ~horizon:10. items)

let crash_scenario = [ Fault.Proc_crash { proc = 1; at = 0. } ]

let test_recover_frame_crash () =
  let p = frame_problem () in
  let baseline = Rt_core.Greedy.ltf_reject p in
  let noop =
    ok_exn (Degrade.recover_frame p crash_scenario ~baseline Degrade.No_op)
  in
  check_bool "no-op misses under a crash" true
    (noop.Degrade.misses <> []);
  List.iter
    (fun pol ->
      let r = ok_exn (Degrade.recover_frame p crash_scenario ~baseline pol) in
      check_ids
        (Degrade.policy_name pol ^ " has zero misses")
        [] r.Degrade.misses;
      (match r.Degrade.residual with
      | None -> Alcotest.fail "expected a residual solution"
      | Some s ->
          check_int "residual width = survivors" 1
            (Rt_partition.Partition.m s.Rt_core.Solution.partition));
      (* total load 1.9 on one surviving processor of capacity 1: something
         must have been shed, and shedding pays penalty *)
      check_bool "recovery shed something" true (r.Degrade.shed <> []);
      check_bool "extra penalty is positive" true
        (Rt_prelude.Float_cmp.exact_gt r.Degrade.extra_penalty 0.))
    [ Degrade.Shed_density; Degrade.Shed_marginal; Degrade.Repartition_ltf ]

let test_recover_frame_fault_free () =
  let p = frame_problem () in
  let baseline = Rt_core.Greedy.ltf_reject p in
  let r = ok_exn (Degrade.recover_frame p [] ~baseline Degrade.Repartition_ltf) in
  check_ids "no misses" [] r.Degrade.misses;
  check_ids "nothing shed" [] r.Degrade.shed;
  check_float 1e-6 "no energy delta" 0. r.Degrade.energy_delta

let test_recover_frame_overrun () =
  let p = frame_problem () in
  let baseline = Rt_core.Greedy.ltf_reject p in
  let sc =
    List.map (fun id -> Fault.Wcec_overrun { task_id = id; factor = 1.5 })
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let noop = ok_exn (Degrade.recover_frame p sc ~baseline Degrade.No_op) in
  check_bool "no-op misses under global overrun" true
    (noop.Degrade.misses <> []);
  let r = ok_exn (Degrade.recover_frame p sc ~baseline Degrade.Shed_density) in
  check_ids "shed-density absorbs the overrun" [] r.Degrade.misses

let test_recover_periodic_crash () =
  let tasks =
    [
      Task.periodic ~id:0 ~cycles:4 ~period:10 ~penalty:2. ();
      Task.periodic ~id:1 ~cycles:3 ~period:10 ~penalty:1.5 ();
      Task.periodic ~id:2 ~cycles:2 ~period:20 ~penalty:1. ();
      Task.periodic ~id:3 ~cycles:5 ~period:20 ~penalty:1. ();
    ]
  in
  let sc = [ Fault.Proc_crash { proc = 0; at = 0. } ] in
  let noop =
    ok_exn
      (Degrade.recover_periodic ~proc:levels ~m:2 ~tasks sc Degrade.No_op)
  in
  check_bool "no-op misses when a processor dies" true
    (noop.Degrade.misses <> []);
  let r =
    ok_exn
      (Degrade.recover_periodic ~proc:levels ~m:2 ~tasks sc
         Degrade.Repartition_ltf)
  in
  check_ids "repartitioned survivors meet deadlines" [] r.Degrade.misses

let test_residual_problem_errors () =
  let p = frame_problem () in
  check_bool "all-crash scenario has no residual" true
    (Result.is_error
       (Degrade.residual_problem p
          [
            Fault.Proc_crash { proc = 0; at = 0. };
            Fault.Proc_crash { proc = 1; at = 0. };
          ]))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "rt_fault"
    [
      ( "scenario",
        [
          Alcotest.test_case "accessors" `Quick test_scenario_accessors;
          Alcotest.test_case "validate rejects" `Quick
            test_scenario_validate_rejects;
          Alcotest.test_case "derated ideal proc" `Quick
            test_derated_proc_ideal;
          Alcotest.test_case "derated level proc" `Quick
            test_derated_proc_levels;
          Alcotest.test_case "seeded generation" `Quick test_gen_deterministic;
        ] );
      ( "frame injection",
        [
          Alcotest.test_case "identity" `Quick test_frame_injection_identity;
          Alcotest.test_case "crash" `Quick test_frame_injection_crash;
          Alcotest.test_case "overrun" `Quick test_frame_injection_overrun;
          Alcotest.test_case "derate" `Quick test_frame_injection_derate;
        ] );
      ( "edf injection",
        [
          Alcotest.test_case "identity" `Quick test_edf_injection_identity;
          Alcotest.test_case "crash" `Quick test_edf_injection_crash;
          Alcotest.test_case "absorbed overrun" `Quick
            test_edf_injection_overrun_feasible;
          Alcotest.test_case "derate misses" `Quick
            test_edf_injection_derate_misses;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "frame crash recovery" `Quick
            test_recover_frame_crash;
          Alcotest.test_case "frame fault-free" `Quick
            test_recover_frame_fault_free;
          Alcotest.test_case "frame overrun recovery" `Quick
            test_recover_frame_overrun;
          Alcotest.test_case "periodic crash recovery" `Quick
            test_recover_periodic_crash;
          Alcotest.test_case "residual errors" `Quick
            test_residual_problem_errors;
        ] );
    ]
