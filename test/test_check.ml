(* Tests for rt_check: the canonical JSON codec, the shared instance
   generators and shrinker, the differential-oracle registry, the
   metamorphic laws, the fuzz driver, and corpus replay. *)

module Json = Rt_check.Json
module Instance = Rt_check.Instance
module Oracle = Rt_check.Oracle
module Laws = Rt_check.Laws
module Corpus = Rt_check.Corpus
module Fuzz = Rt_check.Fuzz
module Fc = Rt_prelude.Float_cmp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let instance_exn ?(proc = Instance.Cubic) ?(m = 1) ?(frame_ticks = 100) items
    =
  match Instance.make ~proc ~m ~frame_ticks items with
  | Ok t -> t
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Json *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("count", Json.Int (-42));
      ("x", Json.Float 0.1);
      ("s", Json.Str "a \"quoted\"\nline\\");
      ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.Str "" ]);
      ("empty_obj", Json.Obj []);
      ("empty_list", Json.List []);
    ]

let test_json_roundtrip () =
  let s = Json.to_string sample in
  match Json.parse s with
  | Error e -> Alcotest.fail e
  | Ok v ->
      check_bool "parse inverts print" true (Json.equal v sample);
      check_string "canonical: print . parse . print = print" s
        (Json.to_string v)

let test_json_int_float_distinct () =
  match Json.parse "[1, 1.0, 1e0]" with
  | Error e -> Alcotest.fail e
  | Ok v ->
      check_bool "int stays int, floats stay float" true
        (Json.equal v (Json.List [ Json.Int 1; Json.Float 1.; Json.Float 1. ]))

let test_json_errors () =
  let bad s = check_bool s true (Result.is_error (Json.parse s)) in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\": 1,}";
  bad "[1] trailing";
  bad "nul";
  bad "\"unterminated";
  bad "[+1]";
  check_bool "non-finite float refused" true
    (match Json.to_string (Json.Float Float.nan) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_json_float_exact =
  qtest "float printing is shortest-exact (parse back IEEE-identical)"
    QCheck2.Gen.(
      oneof
        [
          float_range (-1e6) 1e6;
          map (fun x -> x *. 1e-9) (float_range 0.1 10.);
          map (fun x -> x *. 1e12) (float_range 0.1 10.);
        ])
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) -> Fc.exact_eq f g
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Instance: serialization *)

let test_instance_json_roundtrip () =
  let t =
    instance_exn ~proc:Instance.Xscale_levels ~m:2
      [
        { Instance.id = 3; wcec = 17; penalty = 0.25 };
        { Instance.id = 0; wcec = 101; penalty = 0. };
      ]
  in
  match Instance.of_json (Instance.to_json t) with
  | Error e -> Alcotest.fail e
  | Ok t' -> check_bool "of_json inverts to_json" true (Instance.equal t t')

let prop_instance_json_roundtrip =
  qtest "every generated instance round-trips through JSON"
    (Instance.qcheck_gen ())
    (fun t ->
      match Instance.of_json (Instance.to_json t) with
      | Ok t' -> Instance.equal t t'
      | Error _ -> false)

let test_instance_rejects_malformed () =
  let bad items =
    Result.is_error
      (Instance.make ~proc:Instance.Cubic ~m:1 ~frame_ticks:100 items)
  in
  check_bool "duplicate ids" true
    (bad
       [
         { Instance.id = 1; wcec = 5; penalty = 0. };
         { Instance.id = 1; wcec = 6; penalty = 0. };
       ]);
  check_bool "zero cycles" true
    (bad [ { Instance.id = 1; wcec = 0; penalty = 0. } ]);
  check_bool "negative penalty" true
    (bad [ { Instance.id = 1; wcec = 5; penalty = -1. } ]);
  check_bool "nan penalty" true
    (bad [ { Instance.id = 1; wcec = 5; penalty = Float.nan } ])

(* ------------------------------------------------------------------ *)
(* Instance: generation and shrinking *)

let test_generate_deterministic () =
  let gen seed =
    Instance.generate
      (Rt_prelude.Rng.create ~seed)
      Instance.default_params
  in
  check_bool "same seed, same instance" true (Instance.equal (gen 11) (gen 11));
  check_bool "different seeds differ somewhere" true
    (List.exists
       (fun s -> not (Instance.equal (gen 11) (gen s)))
       [ 12; 13; 14 ])

let prop_generate_well_formed =
  qtest "seeded generator only produces instances make accepts"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let t =
        Instance.generate
          (Rt_prelude.Rng.create ~seed)
          Instance.default_params
      in
      Result.is_ok
        (Instance.make ~proc:t.Instance.proc ~m:t.Instance.m
           ~frame_ticks:t.Instance.frame_ticks t.Instance.items))

(* lexicographic measure that every shrink step must strictly decrease *)
let measure (t : Instance.t) =
  let sum f = List.fold_left (fun acc it -> acc +. f it) 0. t.Instance.items in
  ( Instance.n t,
    t.Instance.m,
    (match t.Instance.proc with Instance.Cubic -> 0 | _ -> 1),
    sum (fun it -> float_of_int it.Instance.wcec),
    sum (fun it -> it.Instance.penalty) )

let prop_shrink_well_founded =
  qtest "every shrink candidate is well-formed and strictly smaller"
    (Instance.qcheck_gen ())
    (fun t ->
      Seq.for_all
        (fun (c : Instance.t) ->
          Result.is_ok
            (Instance.make ~proc:c.Instance.proc ~m:c.Instance.m
               ~frame_ticks:c.Instance.frame_ticks c.Instance.items)
          && measure c < measure t)
        (Instance.shrink t))

let test_minimize_converges () =
  (* failure = "some item needs more than half the frame"; greedy descent
     must land on a single offending item with everything else stripped *)
  let t =
    instance_exn ~proc:Instance.Xscale ~m:3
      [
        { Instance.id = 0; wcec = 20; penalty = 1.5 };
        { Instance.id = 1; wcec = 97; penalty = 2.0 };
        { Instance.id = 2; wcec = 55; penalty = 0.75 };
        { Instance.id = 3; wcec = 31; penalty = 0.1 };
      ]
  in
  let still_fails (c : Instance.t) =
    if List.exists (fun it -> it.Instance.wcec > 50) c.Instance.items then
      Some "has a heavy item"
    else None
  in
  let m, detail = Instance.minimize ~still_fails t in
  check_bool "failure reproduced" true (detail <> None);
  check_int "one item left" 1 (Instance.n m);
  check_int "m reduced" 1 m.Instance.m;
  check_bool "proc canonicalized" true (m.Instance.proc = Instance.Cubic);
  let it = List.hd m.Instance.items in
  check_bool "wcec locally minimal" true
    (it.Instance.wcec > 50 && it.Instance.wcec / 2 <= 50);
  check_bool "penalty zeroed" true (Fc.exact_eq it.Instance.penalty 0.)

(* ------------------------------------------------------------------ *)
(* Oracles *)

let ctx_exn inst =
  match Oracle.context inst with
  | Ok ctx -> ctx
  | Error e -> Alcotest.fail e

let prop_heuristics_pass_all_oracles =
  qtest ~count:60 "every heuristic passes every oracle on seeded instances"
    QCheck2.Gen.(int_range 1 5_000)
    (fun seed ->
      let inst =
        Instance.generate
          (Rt_prelude.Rng.create ~seed)
          Instance.default_params
      in
      match Oracle.context inst with
      | Error _ -> false
      | Ok ctx ->
          List.for_all
            (fun (_, alg) ->
              Oracle.first_failure
                (Oracle.run_all ctx (alg (Oracle.problem ctx)))
              = None)
            Fuzz.algorithms)

let test_oracle_catches_invalid_solution () =
  (* drop one rejected item from a legitimate solution: the structural
     audit must flag the mismatch *)
  let inst =
    instance_exn
      [
        { Instance.id = 0; wcec = 90; penalty = 0.9 };
        { Instance.id = 1; wcec = 80; penalty = 0.2 };
      ]
  in
  let ctx = ctx_exn inst in
  let s = Rt_core.Greedy.ltf_reject (Oracle.problem ctx) in
  check_bool "baseline valid" true
    (Oracle.first_failure (Oracle.run_all ctx s) = None);
  check_bool "one task had to be rejected" true
    (s.Rt_core.Solution.rejected <> []);
  let broken = { s with Rt_core.Solution.rejected = [] } in
  match Oracle.first_failure (Oracle.run_all ctx broken) with
  | Some ("validate", _) -> ()
  | Some (other, d) ->
      Alcotest.fail (Printf.sprintf "wrong oracle fired: %s (%s)" other d)
  | None -> Alcotest.fail "invalid solution passed every oracle"

let test_oracle_exact_cap_skips () =
  let items =
    List.init 12 (fun id -> { Instance.id; wcec = 5; penalty = 0.1 })
  in
  let inst = instance_exn ~m:2 items in
  match Oracle.context ~exact_cap:4 inst with
  | Error e -> Alcotest.fail e
  | Ok ctx -> (
      check_bool "no optimum above the cap" true
        (Oracle.optimal_cost ctx = None);
      let s = Rt_core.Greedy.ltf_reject (Oracle.problem ctx) in
      match List.assoc "exact" (Oracle.run_all ctx s) with
      | Oracle.Skip _ -> ()
      | Oracle.Pass -> Alcotest.fail "exact oracle ran above its cap"
      | Oracle.Fail d -> Alcotest.fail d)

let test_oracle_registry_names () =
  check_int "four oracles" 4 (List.length Oracle.all);
  List.iter
    (fun name ->
      check_bool name true (Oracle.find name <> None))
    [ "validate"; "lower-bound"; "exact"; "replay" ]

(* ------------------------------------------------------------------ *)
(* Laws *)

let prop_laws_hold =
  qtest ~count:60 "every metamorphic law holds on seeded instances"
    QCheck2.Gen.(int_range 5_001 10_000)
    (fun seed ->
      let inst =
        Instance.generate
          (Rt_prelude.Rng.create ~seed)
          Instance.default_params
      in
      Laws.first_failure (Laws.run_all inst) = None)

let test_laws_registry_names () =
  check_int "four laws" 4 (List.length Laws.all);
  List.iter
    (fun name -> check_bool name true (Laws.find name <> None))
    [ "penalty-scaling"; "extra-processor"; "smax-relief"; "cheap-reject" ]

(* ------------------------------------------------------------------ *)
(* Fuzz driver *)

let small_config = { Fuzz.default_config with Fuzz.count = 40 }

let test_fuzz_clean_run () =
  let r = Fuzz.run ~config:small_config () in
  check_int "all instances generated" 40 r.Fuzz.instances;
  check_bool "no failures on the real heuristics" true (r.Fuzz.failures = []);
  check_bool "oracle checks ran" true (r.Fuzz.oracle_checks > 0);
  check_bool "law checks ran" true (r.Fuzz.law_checks > 0)

let test_fuzz_deterministic () =
  let s1 = Fuzz.summary (Fuzz.run ~config:small_config ()) in
  let s2 = Fuzz.summary (Fuzz.run ~config:small_config ()) in
  check_string "same config, same report" s1 s2

(* ------------------------------------------------------------------ *)
(* Corpus *)

let corpus_dir = "corpus"

let entries =
  lazy
    (match Corpus.load_dir corpus_dir with
    | Ok es -> es
    | Error e -> Alcotest.fail e)

let test_corpus_nonempty () =
  check_bool "corpus has entries" true (List.length (Lazy.force entries) >= 3)

let test_corpus_canonical () =
  List.iter
    (fun (path, e) ->
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check_string
        (Filename.basename path ^ " is canonical")
        raw (Corpus.to_string e);
      check_string
        (Filename.basename path ^ " name matches file stem")
        (Filename.remove_extension (Filename.basename path))
        e.Corpus.name)
    (Lazy.force entries)

let test_corpus_replays () =
  List.iter
    (fun (path, e) ->
      match Corpus.replay ~algorithms:Fuzz.algorithms e with
      | Ok () -> ()
      | Error msg ->
          Alcotest.fail (Printf.sprintf "%s: %s" (Filename.basename path) msg))
    (Lazy.force entries)

(* Corpus replay for the delta-cost machinery: drive the local search's
   incremental loads/energies with random accepted moves on every corpus
   instance, then renormalize — the result must agree *exactly* (no eps)
   with a from-scratch Solution.cost re-evaluation. The corpus instances
   are minimized past failures, so any incremental-bookkeeping bug that
   once slipped through replays here forever. *)
let test_corpus_drift_exact () =
  List.iter
    (fun (path, e) ->
      match Instance.to_problem e.Corpus.instance with
      | Error msg ->
          Alcotest.fail (Printf.sprintf "%s: %s" (Filename.basename path) msg)
      | Ok p ->
          let s = Rt_core.Greedy.ltf_reject p in
          let d = Rt_core.Local_search.Drift_test.init p s in
          let rng = Rt_prelude.Rng.create ~seed:7 in
          for _ = 1 to 10_000 do
            ignore (Rt_core.Local_search.Drift_test.random_step rng d)
          done;
          Rt_core.Local_search.Drift_test.renormalize d;
          let sol = Rt_core.Local_search.Drift_test.solution d in
          (match Rt_core.Solution.cost p sol with
          | Error msg ->
              Alcotest.fail
                (Printf.sprintf "%s: %s" (Filename.basename path) msg)
          | Ok fresh ->
              let fresh_loads =
                Rt_partition.Partition.loads sol.Rt_core.Solution.partition
              in
              let inc_loads = Rt_core.Local_search.Drift_test.loads d in
              check_bool
                (Filename.basename path ^ " loads renormalize exactly")
                true
                (Array.for_all2 Rt_prelude.Float_cmp.exact_eq inc_loads
                   fresh_loads);
              check_bool
                (Filename.basename path ^ " cost renormalizes exactly")
                true
                (Rt_prelude.Float_cmp.exact_eq
                   (Rt_core.Local_search.Drift_test.cost d)
                   fresh.Rt_core.Solution.total)))
    (Lazy.force entries)

let test_corpus_minimized () =
  List.iter
    (fun (path, e) ->
      check_bool
        (Filename.basename path ^ " is <= 4 tasks")
        true
        (Instance.n e.Corpus.instance <= 4))
    (Lazy.force entries)

let test_corpus_save_load () =
  let e = List.nth (Lazy.force entries) 0 |> snd in
  let dir = Filename.temp_file "rt_check_corpus" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let renamed = { e with Corpus.name = "saved-copy" } in
  (match Corpus.save ~dir renamed with
  | Error msg -> Alcotest.fail msg
  | Ok path -> (
      match Corpus.load_file path with
      | Error msg -> Alcotest.fail msg
      | Ok e' ->
          check_string "round-trips through disk" (Corpus.to_string renamed)
            (Corpus.to_string e');
          Sys.remove path));
  Sys.rmdir dir

let () =
  Alcotest.run "rt_check"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip + canonical" `Quick
            test_json_roundtrip;
          Alcotest.test_case "int/float distinction" `Quick
            test_json_int_float_distinct;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          prop_json_float_exact;
        ] );
      ( "instance",
        [
          Alcotest.test_case "json roundtrip" `Quick
            test_instance_json_roundtrip;
          prop_instance_json_roundtrip;
          Alcotest.test_case "malformed rejected" `Quick
            test_instance_rejects_malformed;
          Alcotest.test_case "generator deterministic" `Quick
            test_generate_deterministic;
          prop_generate_well_formed;
          prop_shrink_well_founded;
          Alcotest.test_case "minimize converges" `Quick
            test_minimize_converges;
        ] );
      ( "oracle",
        [
          prop_heuristics_pass_all_oracles;
          Alcotest.test_case "catches invalid solution" `Quick
            test_oracle_catches_invalid_solution;
          Alcotest.test_case "exact cap skips" `Quick
            test_oracle_exact_cap_skips;
          Alcotest.test_case "registry names" `Quick
            test_oracle_registry_names;
        ] );
      ( "laws",
        [
          prop_laws_hold;
          Alcotest.test_case "registry names" `Quick test_laws_registry_names;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean run" `Slow test_fuzz_clean_run;
          Alcotest.test_case "deterministic" `Slow test_fuzz_deterministic;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "non-empty" `Quick test_corpus_nonempty;
          Alcotest.test_case "canonical files" `Quick test_corpus_canonical;
          Alcotest.test_case "entries replay" `Quick test_corpus_replays;
          Alcotest.test_case "delta-cost drift replay" `Quick
            test_corpus_drift_exact;
          Alcotest.test_case "entries minimized" `Quick test_corpus_minimized;
          Alcotest.test_case "save/load" `Quick test_corpus_save_load;
        ] );
    ]
