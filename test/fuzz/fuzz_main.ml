(* Driver behind the [@fuzz] dune alias: the fixed-seed CI configuration
   of the differential fuzzer. Exit status 1 when any oracle or law
   failure survives minimization, so the alias fails the build. *)

let () =
  let config =
    match Sys.getenv_opt "RT_FUZZ_COUNT" with
    | None -> Rt_check.Fuzz.default_config
    | Some s -> (
        match int_of_string_opt s with
        | Some count when count > 0 ->
            { Rt_check.Fuzz.default_config with Rt_check.Fuzz.count = count }
        | _ -> Rt_check.Fuzz.default_config)
  in
  let report = Rt_check.Fuzz.run ~config () in
  print_string (Rt_check.Fuzz.summary report);
  if report.Rt_check.Fuzz.failures <> [] then exit 1
