(* Tests for rt_expkit: instance builders, the experiment registry, and the
   leakage-aware policy-energy model behind E8. *)

open Rt_task
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let xscale_enable ~t_sw ~e_sw =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw; e_sw })

(* ------------------------------------------------------------------ *)
(* Runner *)

let test_seeds_distinct () =
  let s = Rt_expkit.Runner.seeds ~base:5 ~n:50 in
  check_int "count" 50 (List.length s);
  check_bool "distinct" true (Task.distinct_ids s)

let test_replicate () =
  let s =
    Rt_expkit.Runner.replicate ~seeds:[ 1; 2; 3 ]
      ~f:(fun seed -> float_of_int seed)
  in
  check_float 1e-12 "mean" 2. s.Rt_prelude.Stats.mean;
  (* NaNs are skipped *)
  let s2 =
    Rt_expkit.Runner.replicate ~seeds:[ 1; 2; 3 ]
      ~f:(fun seed -> if seed = 2 then Float.nan else float_of_int seed)
  in
  check_int "nan skipped" 2 s2.Rt_prelude.Stats.n;
  match
    Rt_expkit.Runner.replicate ~seeds:[ 1 ] ~f:(fun _ -> Float.nan)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "all-NaN must raise"

(* Re-running an experiment pipeline with the same seeds must reproduce
   the result table byte for byte — every aggregate, every rendered
   cell. This is the repository's replication guarantee: a table in the
   paper report can always be regenerated from its seed. *)
let test_runner_deterministic () =
  let run () =
    let proc = xscale_enable ~t_sw:0. ~e_sw:0. in
    let seeds = Rt_expkit.Runner.seeds ~base:2024 ~n:12 in
    let summary_for load =
      Rt_expkit.Runner.replicate ~seeds ~f:(fun seed ->
          let p =
            Rt_expkit.Instances.frame_instance ~proc ~seed ~n:8 ~m:2 ~load ()
          in
          Rt_expkit.Instances.solution_total p (Rt_core.Greedy.ltf_reject p))
    in
    let table =
      List.fold_left
        (fun t load ->
          let s = summary_for load in
          Rt_prelude.Tablefmt.add_row t
            [
              Rt_prelude.Tablefmt.float_cell load;
              string_of_int s.Rt_prelude.Stats.n;
              Rt_prelude.Tablefmt.float_cell ~decimals:6
                s.Rt_prelude.Stats.mean;
              Rt_prelude.Tablefmt.float_cell ~decimals:6
                s.Rt_prelude.Stats.stddev;
            ])
        (Rt_prelude.Tablefmt.create [ "load"; "n"; "mean"; "stddev" ])
        [ 0.6; 1.1; 1.7 ]
    in
    (summary_for 1.1, Rt_prelude.Tablefmt.render table,
     Rt_prelude.Tablefmt.to_csv table)
  in
  let s1, rendered1, csv1 = run () in
  let s2, rendered2, csv2 = run () in
  check_bool "aggregates identical to the bit" true
    (s1.Rt_prelude.Stats.n = s2.Rt_prelude.Stats.n
    && Fc.exact_eq s1.Rt_prelude.Stats.mean s2.Rt_prelude.Stats.mean
    && Fc.exact_eq s1.Rt_prelude.Stats.stddev s2.Rt_prelude.Stats.stddev
    && Fc.exact_eq s1.Rt_prelude.Stats.min s2.Rt_prelude.Stats.min
    && Fc.exact_eq s1.Rt_prelude.Stats.max s2.Rt_prelude.Stats.max
    && Fc.exact_eq s1.Rt_prelude.Stats.median s2.Rt_prelude.Stats.median);
  Alcotest.(check string) "rendered table byte-identical" rendered1 rendered2;
  Alcotest.(check string) "csv byte-identical" csv1 csv2

(* ------------------------------------------------------------------ *)
(* Instances *)

let test_frame_instance_shape () =
  let proc = xscale_enable ~t_sw:0. ~e_sw:0. in
  let p =
    Rt_expkit.Instances.frame_instance ~proc ~seed:7 ~n:15 ~m:3 ~load:1.3 ()
  in
  check_int "n items" 15 (List.length p.Rt_core.Problem.items);
  check_bool "load near target" true
    (Fc.approx_eq ~eps:0.05 (Rt_core.Problem.load_factor p) 1.3);
  check_bool "penalties assigned" true
    (List.for_all
       (fun (it : Task.item) -> Fc.exact_gt it.Task.item_penalty 0.)
       p.Rt_core.Problem.items)

let test_frame_instance_deterministic () =
  let proc = xscale_enable ~t_sw:0. ~e_sw:0. in
  let p1 =
    Rt_expkit.Instances.frame_instance ~proc ~seed:9 ~n:10 ~m:2 ~load:1.5 ()
  in
  let p2 =
    Rt_expkit.Instances.frame_instance ~proc ~seed:9 ~n:10 ~m:2 ~load:1.5 ()
  in
  List.iter2
    (fun (a : Task.item) (b : Task.item) ->
      check_float 1e-12 "weight" a.Task.weight b.Task.weight;
      check_float 1e-12 "penalty" a.Task.item_penalty b.Task.item_penalty)
    p1.Rt_core.Problem.items p2.Rt_core.Problem.items

let test_periodic_instance () =
  let proc = xscale_enable ~t_sw:0. ~e_sw:0. in
  let p, tasks =
    Rt_expkit.Instances.periodic_instance ~proc ~seed:3 ~n:8 ~m:2
      ~total_util:1.5 ()
  in
  check_int "n" 8 (List.length tasks);
  check_float 1e-9 "horizon = hyper-period"
    (float_of_int (Taskset.hyper_period tasks))
    p.Rt_core.Problem.horizon

(* ------------------------------------------------------------------ *)
(* La_ltf consolidation *)

let leaky_enable = xscale_enable ~t_sw:5. ~e_sw:4.

let part_of weights =
  let items = List.mapi (fun id w -> Task.item ~id ~weight:w ()) weights in
  (* one item per processor *)
  Rt_partition.Partition.of_buckets
    (Array.of_list (List.map (fun it -> [ it ]) items))

let test_consolidate_merges_light_processors () =
  (* critical speed ≈ 0.297: four processors at 0.1 merge into fewer *)
  let p = part_of [ 0.1; 0.1; 0.1; 0.1 ] in
  let c = Rt_partition.La_ltf.consolidate ~proc:leaky_enable p in
  let nonempty =
    Array.to_list (Rt_partition.Partition.loads c)
    |> List.filter (fun l -> Fc.exact_gt l 0.)
  in
  check_int "merged to two" 2 (List.length nonempty);
  check_bool "loads within critical speed" true
    (List.for_all
       (fun l -> Fc.leq l (Rt_power.Processor.critical_speed leaky_enable))
       nonempty);
  check_int "same item count" 4 (Rt_partition.Partition.size c)

let test_consolidate_leaves_heavy_alone () =
  let p = part_of [ 0.8; 0.9 ] in
  let c = Rt_partition.La_ltf.consolidate ~proc:leaky_enable p in
  check_bool "unchanged" true (Rt_partition.Partition.equal_shape p c)

let test_critical_processors () =
  let p = part_of [ 0.1; 0.8; 0.2 ] in
  Alcotest.(check (list int))
    "below-critical indices" [ 0; 2 ]
    (Rt_partition.La_ltf.critical_processors ~proc:leaky_enable p)

let prop_consolidate_preserves_items =
  qtest "consolidation never loses or duplicates items"
    QCheck2.Gen.(list_size (int_range 1 8) (float_range 0.02 0.5))
    (fun weights ->
      let items = List.mapi (fun id w -> Task.item ~id ~weight:w ()) weights in
      let p = Rt_partition.Heuristics.ltf ~m:6 items in
      let c = Rt_partition.La_ltf.consolidate ~proc:leaky_enable p in
      let ids part =
        List.sort compare
          (List.map
             (fun (it : Task.item) -> it.Task.item_id)
             (Rt_partition.Partition.all_items part))
      in
      ids p = ids c)

let prop_consolidate_never_raises_e8_energy =
  qtest "consolidation never increases the E8 policy energy"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let rng = Rt_prelude.Rng.create ~seed in
      let tasks =
        Gen.periodic_tasks rng ~n:10 ~total_util:1.0
          ~periods:Gen.default_periods
      in
      let horizon = float_of_int (Taskset.hyper_period tasks) in
      let items = Taskset.items_of_periodics tasks in
      let part = Rt_partition.Heuristics.ltf ~m:8 items in
      let jobs_on bucket = 5 * List.length bucket in
      let e policy =
        Rt_expkit.Exp_leakage.policy_energy ~proc:leaky_enable ~horizon
          ~jobs_on policy part
      in
      let base = e { Rt_expkit.Exp_leakage.ff = false; procrastinate = false } in
      let ff = e { Rt_expkit.Exp_leakage.ff = true; procrastinate = false } in
      Fc.leq ff base)

let prop_procrastination_never_hurts =
  qtest "coalescing idle (PROC) never increases energy"
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let rng = Rt_prelude.Rng.create ~seed in
      let tasks =
        Gen.periodic_tasks rng ~n:12 ~total_util:1.2
          ~periods:Gen.default_periods
      in
      let horizon = float_of_int (Taskset.hyper_period tasks) in
      let items = Taskset.items_of_periodics tasks in
      let part = Rt_partition.Heuristics.ltf ~m:8 items in
      let jobs_on bucket = 5 * List.length bucket in
      let e policy =
        Rt_expkit.Exp_leakage.policy_energy ~proc:leaky_enable ~horizon
          ~jobs_on policy part
      in
      List.for_all
        (fun ff ->
          Fc.leq
            (e { Rt_expkit.Exp_leakage.ff; procrastinate = true })
            (e { Rt_expkit.Exp_leakage.ff; procrastinate = false }))
        [ false; true ])

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_ids_unique () =
  let ids = List.map (fun e -> e.Rt_expkit.Registry.id) Rt_expkit.Registry.all in
  check_bool "unique ids" true
    (List.length (List.sort_uniq compare ids) = List.length ids);
  check_bool "find works" true (Rt_expkit.Registry.find "e1" <> None);
  check_bool "find miss" true (Rt_expkit.Registry.find "nope" = None)

(* every quick experiment produces a well-formed table whose data rows
   carry parseable, sane ratios *)
let test_registry_quick_runs () =
  List.iter
    (fun e ->
      let table = e.Rt_expkit.Registry.run_quick () in
      let rendered = Rt_prelude.Tablefmt.render table in
      let lines = String.split_on_char '\n' rendered in
      Alcotest.(check bool)
        (e.Rt_expkit.Registry.id ^ " has data rows")
        true
        (List.length lines > 2))
    (* keep the expensive optimal-search experiments out of unit tests *)
    (List.filter
       (fun e ->
         not (List.mem e.Rt_expkit.Registry.id [ "e1"; "e7"; "e7b" ]))
       Rt_expkit.Registry.all)

let () =
  Alcotest.run "rt_expkit"
    [
      ( "runner",
        [
          Alcotest.test_case "seeds distinct" `Quick test_seeds_distinct;
          Alcotest.test_case "replicate" `Quick test_replicate;
          Alcotest.test_case "deterministic replication" `Quick
            test_runner_deterministic;
        ] );
      ( "instances",
        [
          Alcotest.test_case "frame instance shape" `Quick
            test_frame_instance_shape;
          Alcotest.test_case "deterministic" `Quick
            test_frame_instance_deterministic;
          Alcotest.test_case "periodic instance" `Quick test_periodic_instance;
        ] );
      ( "la_ltf",
        [
          Alcotest.test_case "merges light processors" `Quick
            test_consolidate_merges_light_processors;
          Alcotest.test_case "leaves heavy alone" `Quick
            test_consolidate_leaves_heavy_alone;
          Alcotest.test_case "critical processors" `Quick
            test_critical_processors;
          prop_consolidate_preserves_items;
          prop_consolidate_never_raises_e8_energy;
          prop_procrastination_never_hurts;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "quick runs render" `Slow test_registry_quick_runs;
        ] );
    ]
