(* Tests for rt_core: problem/solution plumbing, bounds, the greedy
   rejection schedulers, local search, the exact wrappers, the
   uniprocessor DP, and the hardness gadgets. *)

open Rt_task
open Rt_core
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 80) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let cubic = Rt_power.Processor.cubic ()

let problem_exn ~proc ~m ~horizon items =
  match Problem.make ~proc ~m ~horizon items with
  | Ok p -> p
  | Error e -> Alcotest.failf "problem: %s" e

let items_of specs =
  List.mapi (fun id (w, p) -> Task.item ~penalty:p ~id ~weight:w ()) specs

let cost_exn p s =
  match Solution.cost p s with
  | Ok c -> c
  | Error e -> Alcotest.failf "cost: %s" e

(* random rejection instances around a given load factor *)
let random_instance ?(proc = cubic) ~seed ~n ~m ~load () =
  let rng = Rt_prelude.Rng.create ~seed in
  let tasks =
    Gen.frame_tasks_with_load rng ~n ~m
      ~s_max:(Rt_power.Processor.s_max proc)
      ~frame_length:1000. ~load
  in
  let items =
    Taskset.items_of_frames ~frame_length:1000. tasks
    |> Penalty.assign
         (Penalty.Proportional { factor = 1.5; jitter = 0.3 })
         rng ~proc ~horizon:1000.
  in
  problem_exn ~proc ~m ~horizon:1000. items

(* ------------------------------------------------------------------ *)
(* Problem / Solution *)

let test_problem_make_validation () =
  let it = Task.item ~id:0 ~weight:0.5 () in
  check_bool "m=0 rejected" true
    (Result.is_error (Problem.make ~proc:cubic ~m:0 ~horizon:1. [ it ]));
  check_bool "bad horizon" true
    (Result.is_error (Problem.make ~proc:cubic ~m:1 ~horizon:0. [ it ]));
  check_bool "dup ids" true
    (Result.is_error (Problem.make ~proc:cubic ~m:1 ~horizon:1. [ it; it ]));
  let hetero = Task.item ~power_factor:2. ~id:1 ~weight:0.1 () in
  check_bool "hetero refused" true
    (Result.is_error (Problem.make ~proc:cubic ~m:1 ~horizon:1. [ hetero ]))

let test_problem_of_frame () =
  let tasks = [ Task.frame ~penalty:1. ~id:0 ~cycles:500 () ] in
  match Problem.of_frame ~proc:cubic ~m:1 ~frame_length:1000. tasks with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check_float 1e-12 "load factor" 0.5 (Problem.load_factor p);
      check_float 1e-12 "capacity" 1. (Problem.capacity p)

let test_problem_of_periodic_overflow () =
  (* coprime near-max-int periods: the hyper-period lcm would overflow,
     and that must surface as a typed error, not a garbage horizon *)
  let tasks =
    [
      Task.periodic ~penalty:1. ~id:0 ~cycles:1 ~period:max_int ();
      Task.periodic ~penalty:1. ~id:1 ~cycles:1 ~period:(max_int - 1) ();
    ]
  in
  check_bool "overflow is a typed error" true
    (Result.is_error (Problem.of_periodic ~proc:cubic ~m:2 tasks));
  check_bool "empty set is a typed error" true
    (Result.is_error (Problem.of_periodic ~proc:cubic ~m:2 []))

let test_problem_of_periodic () =
  let tasks =
    [
      Task.periodic ~penalty:1. ~id:0 ~cycles:50 ~period:100 ();
      Task.periodic ~penalty:1. ~id:1 ~cycles:50 ~period:200 ();
    ]
  in
  match Problem.of_periodic ~proc:cubic ~m:2 tasks with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check_float 1e-12 "horizon = hyper-period" 200. p.Problem.horizon;
      check_float 1e-12 "load factor" 0.375 (Problem.load_factor p)

let test_solution_cost_and_validate () =
  let items = items_of [ (0.5, 1.); (0.25, 2.) ] in
  let p = problem_exn ~proc:cubic ~m:2 ~horizon:10. items in
  let part =
    Rt_partition.Partition.of_buckets
      [| [ List.nth items 0 ]; [] |]
  in
  let s = { Solution.partition = part; rejected = [ List.nth items 1 ] } in
  let c = cost_exn p s in
  check_float 1e-9 "energy" (10. *. (0.5 ** 3.)) c.Solution.energy;
  check_float 1e-12 "penalty" 2. c.Solution.penalty;
  check_bool "validates" true (Solution.validate p s = Ok ());
  (* dropping an item from both sides must be caught *)
  let bad = { Solution.partition = part; rejected = [] } in
  check_bool "incomplete caught" true (Result.is_error (Solution.validate p bad))

let test_solution_overload_caught () =
  let items = items_of [ (0.9, 1.); (0.9, 1.) ] in
  let p = problem_exn ~proc:cubic ~m:1 ~horizon:1. items in
  let part = Rt_partition.Partition.of_buckets [| items |] in
  let s = { Solution.partition = part; rejected = [] } in
  check_bool "overload detected" true (Result.is_error (Solution.cost p s))

(* ------------------------------------------------------------------ *)
(* Bounds *)

let test_lower_bound_simple () =
  (* one item, penalty far above energy: bound = balanced energy *)
  let items = items_of [ (0.5, 100.) ] in
  let p = problem_exn ~proc:cubic ~m:1 ~horizon:1. items in
  check_float 1e-6 "lb = energy of accept-all" (0.5 ** 3.) (Bounds.lower_bound p)

let prop_lower_bound_sound =
  qtest ~count:50 "lower bound never exceeds the exact optimum"
    QCheck2.Gen.(pair (int_range 1 500) (float_range 0.5 2.0))
    (fun (seed, load) ->
      let p = random_instance ~seed ~n:7 ~m:2 ~load () in
      Bounds.lower_bound p <= Exact.optimal_cost p +. 1e-6)

let test_min_rejected_penalty_extremes () =
  let items = items_of [ (0.5, 1.); (0.5, 3.) ] in
  let p = problem_exn ~proc:cubic ~m:2 ~horizon:1. items in
  check_float 1e-9 "accept everything -> no penalty" 0.
    (Bounds.min_rejected_penalty p ~accepted_weight:1.0);
  check_float 1e-9 "accept nothing -> all penalties" 4.
    (Bounds.min_rejected_penalty p ~accepted_weight:0.);
  (* accepting half the weight keeps the denser item *)
  check_float 1e-9 "keeps the dense item" 1.
    (Bounds.min_rejected_penalty p ~accepted_weight:0.5)

(* ------------------------------------------------------------------ *)
(* Greedy algorithms *)

let all_algorithms =
  Greedy.named
  @ [
      ("ltf-ls", Local_search.with_local_search Greedy.ltf_reject);
      ("marginal-ls", Local_search.with_local_search Greedy.marginal_greedy);
      ("density-ls", Local_search.with_local_search Greedy.density_reject);
    ]

let test_greedy_feasible_accepts_all () =
  (* light load, high penalties: everything should be accepted *)
  let items = items_of [ (0.3, 10.); (0.2, 10.); (0.4, 10.) ] in
  let p = problem_exn ~proc:cubic ~m:2 ~horizon:1. items in
  List.iter
    (fun (name, alg) ->
      let s = alg p in
      Alcotest.(check int) (name ^ " accepts all") 3
        (Rt_partition.Partition.size s.Solution.partition))
    all_algorithms

let test_greedy_overload_forces_rejection () =
  (* total weight 2.4 on one unit-speed processor: must reject *)
  let items = items_of [ (0.8, 1.); (0.8, 1.); (0.8, 1.) ] in
  let p = problem_exn ~proc:cubic ~m:1 ~horizon:1. items in
  List.iter
    (fun (name, alg) ->
      let s = alg p in
      Alcotest.(check bool) (name ^ " rejects") true (s.Solution.rejected <> []);
      Alcotest.(check bool)
        (name ^ " validates") true
        (Solution.validate p s = Ok ()))
    all_algorithms

let test_marginal_rejects_unprofitable () =
  (* penalty below any possible marginal energy: marginal greedy rejects
     even though acceptance is feasible *)
  let items = items_of [ (0.9, 0.001) ] in
  let p = problem_exn ~proc:cubic ~m:1 ~horizon:1. items in
  let s = Greedy.marginal_greedy p in
  check_int "rejected voluntarily" 1 (List.length s.Solution.rejected);
  (* ltf_reject, by contrast, accepts whatever fits *)
  let s2 = Greedy.ltf_reject p in
  check_int "ltf accepts" 0 (List.length s2.Solution.rejected)

let test_density_trims () =
  (* same instance: the trimming phase should also reject *)
  let items = items_of [ (0.9, 0.001) ] in
  let p = problem_exn ~proc:cubic ~m:1 ~horizon:1. items in
  let s = Greedy.density_reject p in
  check_int "density trims" 1 (List.length s.Solution.rejected)

let prop_all_algorithms_valid =
  qtest ~count:60 "every algorithm emits a validating solution"
    QCheck2.Gen.(
      triple (int_range 1 10_000) (int_range 1 4) (float_range 0.3 2.5))
    (fun (seed, m, load) ->
      let p = random_instance ~seed ~n:12 ~m ~load () in
      List.for_all
        (fun (_, alg) -> Solution.validate p (alg p) = Ok ())
        all_algorithms)

let prop_local_search_never_hurts =
  qtest ~count:60 "local search never increases the cost"
    QCheck2.Gen.(pair (int_range 1 10_000) (float_range 0.5 2.0))
    (fun (seed, load) ->
      let p = random_instance ~seed ~n:10 ~m:3 ~load () in
      List.for_all
        (fun (_, alg) ->
          let s = alg p in
          let s' = Local_search.improve p s in
          (cost_exn p s').Solution.total
          <= (cost_exn p s).Solution.total +. 1e-9)
        Greedy.named)

(* Regression for the gain tolerance: it used to be frozen from the
   maximum *initial* load, so a start with empty processors (all-reject)
   got a noise-level eps; once accept moves grew the buckets to capacity
   scale, float-noise "gains" above that stale eps could keep the loop
   churning to the move budget. The tolerance is now derived from the
   energy at full capacity, an upper bound valid however far the loads
   grow — so the loop must both converge and never worsen the cost. *)
let prop_local_search_converges_as_loads_grow =
  qtest ~count:60 "local search converges when loads grow from empty"
    QCheck2.Gen.(pair (int_range 1 10_000) (float_range 0.5 2.0))
    (fun (seed, load) ->
      let p = random_instance ~seed ~n:12 ~m:3 ~load () in
      let s0 =
        {
          Solution.partition = Rt_partition.Partition.empty ~m:3;
          rejected = p.Problem.items;
        }
      in
      match Local_search.improve_budgeted p s0 with
      | Error e -> Alcotest.failf "improve: %s" e
      | Ok b ->
          (not b.Local_search.exhausted)
          && (cost_exn p b.Local_search.solution).Solution.total
             <= (cost_exn p s0).Solution.total +. 1e-9)

(* The delta-cost invariant: after thousands of random accepted (feasible
   but not improving) moves and swaps, the incrementally-maintained loads
   and bucket energies must renormalize to *exact* agreement with a
   from-scratch [Solution.cost] re-evaluation — the renormalization pass
   sums in the same order [Partition.of_buckets] does, so any surviving
   difference is a bookkeeping bug, not float drift. *)
let drift_agrees ~steps ~rng_seed p =
  let s = Greedy.ltf_reject p in
  let d = Local_search.Drift_test.init p s in
  let rng = Rt_prelude.Rng.create ~seed:rng_seed in
  let applied = ref 0 in
  for _ = 1 to steps do
    if Local_search.Drift_test.random_step rng d then incr applied
  done;
  Local_search.Drift_test.renormalize d;
  let sol = Local_search.Drift_test.solution d in
  let fresh = cost_exn p sol in
  let fresh_loads = Rt_partition.Partition.loads sol.Solution.partition in
  let inc_loads = Local_search.Drift_test.loads d in
  Array.for_all2 Fc.exact_eq inc_loads fresh_loads
  && Fc.exact_eq (Local_search.Drift_test.cost d) fresh.Solution.total

let prop_drift_renormalizes_exactly =
  qtest ~count:20 "10^4 random moves: renormalized state = from-scratch cost"
    QCheck2.Gen.(
      triple (int_range 1 10_000) (int_range 2 6) (float_range 0.5 2.0))
    (fun (seed, m, load) ->
      let p = random_instance ~seed ~n:30 ~m ~load () in
      drift_agrees ~steps:10_000 ~rng_seed:(seed + 1) p)

(* O(1) SoA id lookup vs the O(n) list scan it replaced: they must agree
   on every present id and on misses, for any duplicate-free instance *)
let prop_item_lookup_matches_list_scan =
  qtest ~count:60 "Problem.item = list scan"
    QCheck2.Gen.(pair (int_range 1 10_000) (float_range 0.3 2.5))
    (fun (seed, load) ->
      let p = random_instance ~seed ~n:25 ~m:3 ~load () in
      let scan id =
        List.find_opt (fun (it : Task.item) -> it.item_id = id) p.Problem.items
      in
      List.for_all
        (fun (it : Task.item) ->
          Problem.item p it.item_id = scan it.item_id
          && Problem.item p it.item_id = Some it)
        p.Problem.items
      && Problem.item p (-1) = None
      && Problem.item p max_int = scan max_int)

let test_local_search_budgeted () =
  let p = random_instance ~seed:42 ~n:12 ~m:3 ~load:1.8 () in
  let s = Greedy.ltf_reject p in
  (* zero budget: identity solution, flagged exhausted *)
  (match Local_search.improve_budgeted ~max_moves:0 p s with
  | Error e -> Alcotest.failf "budgeted: %s" e
  | Ok b ->
      check_int "no moves applied" 0 b.Local_search.moves;
      check_bool "exhausted" true b.Local_search.exhausted;
      check_float 1e-12 "identity cost" (cost_exn p s).Solution.total
        (cost_exn p b.Local_search.solution).Solution.total);
  (* default budget: converges, matching the raising wrapper *)
  (match Local_search.improve_budgeted p s with
  | Error e -> Alcotest.failf "budgeted: %s" e
  | Ok b ->
      check_bool "not exhausted" false b.Local_search.exhausted;
      check_float 1e-9 "matches improve"
        (cost_exn p (Local_search.improve p s)).Solution.total
        (cost_exn p b.Local_search.solution).Solution.total);
  (* an infeasible start is a typed error, not an exception *)
  let items = items_of [ (0.9, 1.); (0.9, 1.) ] in
  let p' = problem_exn ~proc:cubic ~m:1 ~horizon:1. items in
  let overloaded =
    { Solution.partition = Rt_partition.Partition.of_buckets [| items |];
      rejected = [] }
  in
  check_bool "overloaded input is a typed error" true
    (Result.is_error (Local_search.improve_budgeted p' overloaded))

let prop_heuristics_above_optimal =
  qtest ~count:40 "no heuristic beats the exact optimum"
    QCheck2.Gen.(pair (int_range 1 10_000) (float_range 0.5 2.0))
    (fun (seed, load) ->
      let p = random_instance ~seed ~n:8 ~m:2 ~load () in
      let opt = Exact.optimal_cost p in
      List.for_all
        (fun (_, alg) -> (cost_exn p (alg p)).Solution.total >= opt -. 1e-6)
        all_algorithms)

let test_random_reject_valid () =
  let rng = Rt_prelude.Rng.create ~seed:77 in
  let p = random_instance ~seed:5 ~n:15 ~m:3 ~load:1.5 () in
  let s = Greedy.random_reject rng p in
  check_bool "validates" true (Solution.validate p s = Ok ())

let test_best_of () =
  let p = random_instance ~seed:11 ~n:10 ~m:2 ~load:1.8 () in
  let best = Greedy.best_of (List.map snd all_algorithms) p in
  let best_cost = (cost_exn p best).Solution.total in
  List.iter
    (fun (name, alg) ->
      Alcotest.(check bool)
        (name ^ " >= best") true
        ((cost_exn p (alg p)).Solution.total >= best_cost -. 1e-9))
    all_algorithms

(* ------------------------------------------------------------------ *)
(* Exact wrappers *)

let prop_exhaustive_equals_bnb =
  qtest ~count:30 "wrapped exhaustive and B&B agree"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let p = random_instance ~seed ~n:7 ~m:2 ~load:1.3 () in
      let a = (cost_exn p (Exact.exhaustive p)).Solution.total in
      let b = (cost_exn p (Exact.branch_and_bound p)).Solution.total in
      Fc.approx_eq ~eps:1e-9 a b)

(* ------------------------------------------------------------------ *)
(* Uni_dp *)

let frame_tasks_of specs =
  List.mapi (fun id (c, p) -> Task.frame ~penalty:p ~id ~cycles:c ()) specs

let test_uni_dp_simple () =
  (* capacity 1000 cycles; both fit; penalties dominate: accept all *)
  let tasks = frame_tasks_of [ (300, 1000.); (200, 1000.) ] in
  match Uni_dp.exact ~proc:cubic ~frame_length:1000. tasks with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_int "all accepted" 2
        (Rt_partition.Partition.size o.Uni_dp.solution.Solution.partition);
      check_float 1e-9 "cost = energy of 0.5 load" (1000. *. (0.5 ** 3.)) o.Uni_dp.cost

let test_uni_dp_prefers_cheap_rejection () =
  (* with small penalties the DP drops the big task and keeps the small one:
     energy(200 cycles) + penalty(300-cycle task) beats every alternative *)
  let tasks = frame_tasks_of [ (300, 10.); (200, 10.) ] in
  match Uni_dp.exact ~proc:cubic ~frame_length:1000. tasks with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_int "keeps only the small task" 1
        (Rt_partition.Partition.size o.Uni_dp.solution.Solution.partition);
      check_float 1e-9 "cost = energy(0.2) + 10" ((1000. *. (0.2 ** 3.)) +. 10.)
        o.Uni_dp.cost

let prop_uni_dp_matches_exhaustive =
  qtest ~count:40 "uniprocessor DP equals the exhaustive optimum"
    QCheck2.Gen.(
      list_size (int_range 1 8)
        (pair (int_range 50 600) (float_range 0. 50.)))
    (fun specs ->
      let tasks = frame_tasks_of specs in
      match Uni_dp.exact ~proc:cubic ~frame_length:1000. tasks with
      | Error _ -> false
      | Ok o ->
          let opt = Exact.optimal_cost o.Uni_dp.problem in
          Fc.approx_eq ~eps:1e-6 o.Uni_dp.cost opt)

let prop_uni_dp_scaled_sound =
  qtest ~count:40 "scaled DP: feasible, never below exact, exact at scale 1"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 10)
           (pair (int_range 50 600) (float_range 0.1 50.)))
        (float_range 0.05 0.5))
    (fun (specs, epsilon) ->
      let tasks = frame_tasks_of specs in
      match
        ( Uni_dp.exact ~proc:cubic ~frame_length:1000. tasks,
          Uni_dp.scaled ~epsilon ~proc:cubic ~frame_length:1000. tasks,
          (* epsilon so small the scale collapses to 1: exact again *)
          Uni_dp.scaled ~epsilon:1e-9 ~proc:cubic ~frame_length:1000. tasks )
      with
      | Ok e, Ok s, Ok s1 ->
          Solution.validate s.Uni_dp.problem s.Uni_dp.solution = Ok ()
          && Fc.geq ~eps:1e-9 s.Uni_dp.cost e.Uni_dp.cost
          && Fc.approx_eq ~eps:1e-9 s1.Uni_dp.cost e.Uni_dp.cost
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Hardness gadgets *)

let test_partition_gadget_yes_instance () =
  (* {3,3,2,2,2}: perfect split 6/6 exists *)
  match Hardness.partition_gadget [ 3; 3; 2; 2; 2 ] with
  | Error e -> Alcotest.fail e
  | Ok g ->
      let opt = Exact.optimal_cost g.Hardness.problem in
      (match g.Hardness.all_accepted_cost with
      | Some c -> check_float 1e-6 "optimum = balanced accept-all" c opt
      | None -> Alcotest.fail "expected a perfect cost")

let test_partition_gadget_no_instance () =
  (* {3,1}: sum 4, B=2, but 3 > 2 cannot fit: rejection forced *)
  match Hardness.partition_gadget [ 3; 1 ] with
  | Error e -> Alcotest.fail e
  | Ok g ->
      let opt = Exact.optimal_cost g.Hardness.problem in
      (match g.Hardness.all_accepted_cost with
      | Some c -> check_bool "optimum strictly above perfect" true (opt > c +. 1.)
      | None -> Alcotest.fail "expected a perfect cost")

let test_partition_gadget_validation () =
  check_bool "odd sum" true (Result.is_error (Hardness.partition_gadget [ 1; 2 ]));
  check_bool "empty" true (Result.is_error (Hardness.partition_gadget []));
  check_bool "non-positive" true
    (Result.is_error (Hardness.partition_gadget [ 2; -2; 2; 2 ]))

let test_knapsack_gadget_is_knapsack () =
  (* optimal rejects exactly the min-penalty set that frees enough room *)
  match
    Hardness.knapsack_gadget ~capacity:10
      [ (6, 3.); (5, 2.); (5, 1.) ]
  with
  | Error e -> Alcotest.fail e
  | Ok g ->
      let opt = Exact.optimal_cost g.Hardness.problem in
      (* best: accept 5+5 (reject the 6, penalty 3)? or accept 6 (reject
         both 5s, penalty 3)? or accept 6+... 6+5 = 11 > 10. Optimal = 3
         either way; energy is negligible. *)
      check_float 1e-3 "knapsack optimum" 3. opt

let () =
  Alcotest.run "rt_core"
    [
      ( "problem_solution",
        [
          Alcotest.test_case "problem validation" `Quick test_problem_make_validation;
          Alcotest.test_case "of_frame" `Quick test_problem_of_frame;
          Alcotest.test_case "of_periodic" `Quick test_problem_of_periodic;
          Alcotest.test_case "of_periodic hyper-period overflow" `Quick
            test_problem_of_periodic_overflow;
          Alcotest.test_case "cost and validate" `Quick
            test_solution_cost_and_validate;
          Alcotest.test_case "overload caught" `Quick test_solution_overload_caught;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "simple lower bound" `Quick test_lower_bound_simple;
          prop_lower_bound_sound;
          Alcotest.test_case "fractional rejection extremes" `Quick
            test_min_rejected_penalty_extremes;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "light load accepts all" `Quick
            test_greedy_feasible_accepts_all;
          Alcotest.test_case "overload forces rejection" `Quick
            test_greedy_overload_forces_rejection;
          Alcotest.test_case "marginal rejects unprofitable" `Quick
            test_marginal_rejects_unprofitable;
          Alcotest.test_case "density trims" `Quick test_density_trims;
          prop_all_algorithms_valid;
          prop_local_search_never_hurts;
          prop_local_search_converges_as_loads_grow;
          prop_drift_renormalizes_exactly;
          prop_item_lookup_matches_list_scan;
          Alcotest.test_case "budgeted local search" `Quick
            test_local_search_budgeted;
          prop_heuristics_above_optimal;
          Alcotest.test_case "random baseline valid" `Quick test_random_reject_valid;
          Alcotest.test_case "best_of" `Quick test_best_of;
        ] );
      ("exact", [ prop_exhaustive_equals_bnb ]);
      ( "uni_dp",
        [
          Alcotest.test_case "simple accept-all" `Quick test_uni_dp_simple;
          Alcotest.test_case "prefers cheap rejection" `Quick
            test_uni_dp_prefers_cheap_rejection;
          prop_uni_dp_matches_exhaustive;
          prop_uni_dp_scaled_sound;
        ] );
      ( "hardness",
        [
          Alcotest.test_case "partition yes-instance" `Quick
            test_partition_gadget_yes_instance;
          Alcotest.test_case "partition no-instance" `Quick
            test_partition_gadget_no_instance;
          Alcotest.test_case "gadget validation" `Quick
            test_partition_gadget_validation;
          Alcotest.test_case "knapsack gadget" `Quick test_knapsack_gadget_is_knapsack;
        ] );
    ]
