(* CI smoke for the streaming service (the @serve alias): a 10k-job
   seeded run with a derating fault injected mid-stream. The run must
   come back [Ok] — the engine returns [Error (Deadline_miss _)] if any
   admitted job ever completes late, so [Ok] IS the zero-miss assertion
   — and the incident log must be non-empty (at minimum the fault
   strike itself is recorded). *)

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let n = 10_000
let mean_cycles = 25.

let () =
  let source =
    Rt_serve.Source.synthetic ~seed:7 ~limit:n ~rate:(1.4 /. mean_cycles)
      ~s_max:1. ~mean_cycles ~slack_lo:1.2 ~slack_hi:4. ~penalty_factor:1.3 ()
  in
  (* ~178k time units of stream; derate well inside it, with plenty of
     admitted work in flight *)
  let config =
    {
      Rt_serve.Serve.default_config with
      policy = Rt_online.Admission.Profitable;
      m = 2;
      faults =
        [
          { Rt_fault.Fault.at = 30_000.;
            fault = Rt_fault.Fault.Speed_derate { factor = 0.6 } };
        ];
    }
  in
  match Rt_serve.Serve.run ~proc ~config source with
  | Error e ->
      Printf.eprintf "serve_smoke: FAILED: %s\n"
        (Rt_online.Admission.error_to_string e);
      exit 1
  | Ok r ->
      let incidents = List.length r.Rt_serve.Serve.incidents in
      if r.Rt_serve.Serve.seen <> n then begin
        Printf.eprintf "serve_smoke: FAILED: saw %d of %d jobs\n"
          r.Rt_serve.Serve.seen n;
        exit 1
      end;
      if incidents = 0 then begin
        Printf.eprintf
          "serve_smoke: FAILED: injected fault left no incident\n";
        exit 1
      end;
      let o = r.Rt_serve.Serve.outcome in
      Printf.printf
        "serve_smoke: OK — %d jobs, %d admitted, %d rejected (%d forced, \
         %d replan-shed), %d incidents, zero admitted-deadline misses\n"
        r.Rt_serve.Serve.seen
        (List.length o.Rt_online.Admission.admitted)
        (List.length o.Rt_online.Admission.rejected)
        o.Rt_online.Admission.forced_rejections
        r.Rt_serve.Serve.replan_shed incidents
