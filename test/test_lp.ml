(* Tests for the simplex LP solver: textbook cases, degenerate cases, and
   randomized cross-checks against brute-force feasible sampling. *)

open Rt_lp
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let solve_exn p =
  match Simplex.solve p with
  | Ok o -> o
  | Error e -> Alcotest.failf "simplex error: %s" e

let optimal_exn p =
  match solve_exn p with
  | Simplex.Optimal { value; solution } -> (value, solution)
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Simplex.Iteration_limit _ -> Alcotest.fail "unexpected pivot-limit"

(* ------------------------------------------------------------------ *)

let test_textbook_le () =
  (* max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  => (2, 6), 36 *)
  let p =
    {
      Simplex.minimize = [| -3.; -5. |];
      constraints =
        [
          ([| 1.; 0. |], Simplex.Le, 4.);
          ([| 0.; 2. |], Simplex.Le, 12.);
          ([| 3.; 2. |], Simplex.Le, 18.);
        ];
    }
  in
  let v, x = optimal_exn p in
  check_float 1e-7 "value" (-36.) v;
  check_float 1e-7 "x" 2. x.(0);
  check_float 1e-7 "y" 6. x.(1)

let test_equality_and_ge () =
  (* min x + 2y s.t. x + y = 10; x >= 3 => (10, 0)?  y >= 0, x+y=10, x>=3:
     minimize x + 2y = x + 2(10 - x) = 20 - x, maximize x => x = 10, y = 0,
     value 10 *)
  let p =
    {
      Simplex.minimize = [| 1.; 2. |];
      constraints =
        [
          ([| 1.; 1. |], Simplex.Eq, 10.);
          ([| 1.; 0. |], Simplex.Ge, 3.);
        ];
    }
  in
  let v, x = optimal_exn p in
  check_float 1e-7 "value" 10. v;
  check_float 1e-7 "x" 10. x.(0);
  check_float 1e-7 "y" 0. x.(1)

let test_infeasible () =
  let p =
    {
      Simplex.minimize = [| 1. |];
      constraints =
        [ ([| 1. |], Simplex.Le, 1.); ([| 1. |], Simplex.Ge, 2.) ];
    }
  in
  check_bool "infeasible" true (solve_exn p = Simplex.Infeasible)

let test_unbounded () =
  let p =
    { Simplex.minimize = [| -1. |]; constraints = [ ([| 1. |], Simplex.Ge, 1.) ] }
  in
  check_bool "unbounded" true (solve_exn p = Simplex.Unbounded)

let test_negative_rhs_normalization () =
  (* -x <= -2  <=>  x >= 2 *)
  let p =
    {
      Simplex.minimize = [| 1. |];
      constraints = [ ([| -1. |], Simplex.Le, -2.) ];
    }
  in
  let v, _ = optimal_exn p in
  check_float 1e-7 "value" 2. v

let test_degenerate () =
  (* degenerate vertex: multiple constraints meet at the optimum *)
  let p =
    {
      Simplex.minimize = [| -1.; -1. |];
      constraints =
        [
          ([| 1.; 0. |], Simplex.Le, 1.);
          ([| 0.; 1. |], Simplex.Le, 1.);
          ([| 1.; 1. |], Simplex.Le, 2.);
        ];
    }
  in
  let v, _ = optimal_exn p in
  check_float 1e-7 "value" (-2.) v

let test_redundant_equalities () =
  (* duplicated equality rows exercise the redundant-artificial path *)
  let p =
    {
      Simplex.minimize = [| 1.; 1. |];
      constraints =
        [
          ([| 1.; 1. |], Simplex.Eq, 4.);
          ([| 2.; 2. |], Simplex.Eq, 8.);
        ];
    }
  in
  let v, x = optimal_exn p in
  check_float 1e-7 "value" 4. v;
  check_bool "solution feasible" true (Simplex.feasible p x)

let test_malformed () =
  check_bool "ragged" true
    (Result.is_error
       (Simplex.solve
          {
            Simplex.minimize = [| 1.; 2. |];
            constraints = [ ([| 1. |], Simplex.Le, 1.) ];
          }));
  check_bool "empty objective" true
    (Result.is_error (Simplex.solve { Simplex.minimize = [||]; constraints = [] }));
  check_bool "nan" true
    (Result.is_error
       (Simplex.solve
          { Simplex.minimize = [| Float.nan |]; constraints = [] }))

let test_beale_cycling () =
  (* Beale's classic cycling instance: a naive most-negative-cost pivot
     rule cycles forever on this degenerate LP; Bland's rule must
     terminate at the optimum -0.05 *)
  let p =
    {
      Simplex.minimize = [| -0.75; 150.; -0.02; 6. |];
      constraints =
        [
          ([| 0.25; -60.; -0.04; 9. |], Simplex.Le, 0.);
          ([| 0.5; -90.; -0.02; 3. |], Simplex.Le, 0.);
          ([| 0.; 0.; 1.; 0. |], Simplex.Le, 1.);
        ];
    }
  in
  let v, x = optimal_exn p in
  check_float 1e-7 "value" (-0.05) v;
  check_bool "solution feasible" true (Simplex.feasible p x)

let test_pivot_limit () =
  (* a tiny budget on a non-trivial instance must surface as the typed
     Iteration_limit outcome, not an error or a bogus optimum *)
  let p =
    {
      Simplex.minimize = [| -3.; -5. |];
      constraints =
        [
          ([| 1.; 0. |], Simplex.Le, 4.);
          ([| 0.; 2. |], Simplex.Le, 12.);
          ([| 3.; 2. |], Simplex.Le, 18.);
        ];
    }
  in
  (match Simplex.solve ~max_pivots:1 p with
  | Ok (Simplex.Iteration_limit { pivots }) ->
      check_bool "pivots within budget" true (pivots <= 1)
  | Ok _ -> Alcotest.fail "expected Iteration_limit"
  | Error e -> Alcotest.failf "unexpected error: %s" e);
  (* the same instance solves fine with the default budget *)
  let v, _ = optimal_exn p in
  check_float 1e-7 "default budget solves" (-36.) v

(* randomized: on random bounded-feasible LPs the simplex optimum must be
   feasible and no sampled feasible point may beat it *)
let prop_optimum_dominates_samples =
  qtest ~count:120 "optimum is feasible and dominates sampled feasible points"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let rng = Rt_prelude.Rng.create ~seed in
      let n = Rt_prelude.Rng.int rng ~lo:1 ~hi:4 in
      let m = Rt_prelude.Rng.int rng ~lo:1 ~hi:4 in
      let minimize =
        Array.init n (fun _ -> Rt_prelude.Rng.float rng ~lo:(-2.) ~hi:3.)
      in
      (* box constraint keeps everything bounded; random Le rows with
         non-negative coefficients keep 0 feasible *)
      let box = (Array.make n 1., Simplex.Le, float_of_int n) in
      let random_rows =
        List.init m (fun _ ->
            ( Array.init n (fun _ -> Rt_prelude.Rng.float rng ~lo:0. ~hi:2.),
              Simplex.Le,
              Rt_prelude.Rng.float rng ~lo:0.5 ~hi:4. ))
      in
      let p = { Simplex.minimize; constraints = box :: random_rows } in
      match Simplex.solve p with
      | Error _ -> false
      | Ok Simplex.Infeasible | Ok Simplex.Unbounded | Ok (Simplex.Iteration_limit _)
        ->
          false (* 0 is feasible and the box bounds everything *)
      | Ok (Simplex.Optimal { value; solution }) ->
          Simplex.feasible p solution
          && Fc.approx_eq ~eps:1e-6 (Simplex.value p solution) value
          &&
          (* random feasible samples cannot beat the optimum *)
          let ok = ref true in
          for _ = 1 to 50 do
            let x =
              Array.init n (fun _ -> Rt_prelude.Rng.float rng ~lo:0. ~hi:1.5)
            in
            if Simplex.feasible ~eps:0. p x then
              if Simplex.value p x < value -. 1e-6 then ok := false
          done;
          !ok)

let () =
  Alcotest.run "rt_lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "textbook (Le)" `Quick test_textbook_le;
          Alcotest.test_case "equality + Ge" `Quick test_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "negative rhs" `Quick
            test_negative_rhs_normalization;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          Alcotest.test_case "redundant equalities" `Quick
            test_redundant_equalities;
          Alcotest.test_case "malformed input" `Quick test_malformed;
          Alcotest.test_case "Beale cycling instance" `Quick
            test_beale_cycling;
          Alcotest.test_case "pivot limit" `Quick test_pivot_limit;
          prop_optimum_dominates_samples;
        ] );
    ]
