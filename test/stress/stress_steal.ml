(* Work-stealing starvation stress (run via `dune build @stress`).

   An adversarial select-and-partition instance built so the search tree
   is one long spine: m = 4 unit-capacity processors, one 0.95-weight
   item and a tail of 0.55-weight items. At most one heavy item fits per
   processor, so once the processors are occupied nearly every node has
   a single child (reject the next item) — the worst case for load
   balancing, where stealable work is permanently scarce and the only
   way an idle domain eats is to steal the shallowest pending subtree
   the moment it appears.

   Asserted here, on the raw Par_search API:
   - the run stays byte-identical to the sequential branch-and-bound;
   - every domain steals at least once (the ownerless seed deque makes
     even the first unit of work arrive by stealing), and the run as a
     whole steals at least twice per domain;
   - with >= 4 hardware cores, parallel node throughput at 4 domains is
     at least 2x the sequential search's (skipped — with a note — on
     smaller machines, where the spinning thieves share one core);
   - a bucket_cost that raises mid-search propagates out of the pool,
     and the same pool then runs a clean search — no deque, incumbent
     or counter state survives a poisoned run. *)

module Fc = Rt_prelude.Float_cmp
module Clock = Rt_prelude.Clock
module Search = Rt_exact.Search
module Par = Rt_parallel.Par_search

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.printf "[FAIL] %s\n%!" name
  end

let m = 4
let capacity = 1.0
let n = 24

let items =
  List.init n (fun i ->
      Rt_task.Task.item ~id:i
        ~weight:(if i = 0 then 0.95 else 0.55)
        ~penalty:(10. +. (0.1 *. float_of_int i))
        ~power_factor:1.0 ())

let bucket_cost load = load *. load *. load

let fingerprint (s : Search.solution) =
  let buckets =
    List.concat
      (List.init (Rt_partition.Partition.m s.Search.partition) (fun j ->
           List.map
             (fun (it : Rt_task.Task.item) -> (j, it.Rt_task.Task.item_id))
             (Rt_partition.Partition.bucket s.Search.partition j)))
  in
  buckets
  @ List.map
      (fun (it : Rt_task.Task.item) -> (-1, it.Rt_task.Task.item_id))
      s.Search.rejected

let () =
  (* sequential reference and its node throughput *)
  let t0 = Clock.now () in
  let seq =
    match Search.branch_and_bound_budgeted ~m ~capacity ~bucket_cost items with
    | Ok a -> a
    | Error e -> failwith e
  in
  let seq_wall = Clock.elapsed ~since:t0 in
  check "sequential search completed" (not seq.Search.exhausted);

  Rt_parallel.Pool.with_pool ~domains:4 (fun pool ->
      let t1 = Clock.now () in
      let a, stats =
        match Par.branch_and_bound_stats ~pool ~m ~capacity ~bucket_cost items with
        | Ok r -> r
        | Error e -> failwith e
      in
      let par_wall = Clock.elapsed ~since:t1 in
      check "parallel search completed" (not a.Search.exhausted);
      check "cost bit-identical to sequential"
        (Fc.exact_eq seq.Search.best.Search.cost a.Search.best.Search.cost);
      check "solution byte-identical to sequential"
        (fingerprint seq.Search.best = fingerprint a.Search.best);

      (* starvation resistance: every domain ate at least once *)
      List.iteri
        (fun w s ->
          check (Printf.sprintf "domain %d stole at least once (got %d)" w s)
            (s >= 1))
        stats.Par.steals;
      let total_steals = List.fold_left ( + ) 0 stats.Par.steals in
      check
        (Printf.sprintf "total steals >= 2 per domain (got %d)" total_steals)
        (total_steals >= 2 * stats.Par.domains);

      let seq_tput = float_of_int seq.Search.nodes /. seq_wall in
      let par_tput = float_of_int a.Search.nodes /. par_wall in
      Printf.printf
        "stress_steal: seq %d nodes in %.3fs (%.0f/s); 4 domains %d nodes in \
         %.3fs (%.0f/s); steals %s; splits %d\n%!"
        seq.Search.nodes seq_wall seq_tput a.Search.nodes par_wall par_tput
        (String.concat ","
           (List.map string_of_int stats.Par.steals))
        stats.Par.splits;
      if Domain.recommended_domain_count () >= 4 then
        check
          (Printf.sprintf "parallel node throughput >= 2x sequential (%.0f vs %.0f)"
             par_tput seq_tput)
          (Fc.exact_ge par_tput (2.0 *. seq_tput))
      else
        Printf.printf
          "stress_steal: %d hardware core(s) — skipping the 2x throughput \
           gate (needs >= 4)\n%!"
          (Domain.recommended_domain_count ());

      (* a poisoned cost function: the exception must escape the pool,
         and the pool (and a fresh work-stealing run on it) must remain
         fully usable afterwards *)
      let poisoned load =
        if Fc.exact_gt load 0.85 then failwith "poisoned bucket_cost"
        else bucket_cost load
      in
      (match
         Par.branch_and_bound_stats ~pool ~m ~capacity ~bucket_cost:poisoned
           items
       with
      | Ok _ -> check "poisoned run must raise" false
      | exception Failure msg ->
          check "poison message intact" (msg = "poisoned bucket_cost")
      | Error e -> check (Printf.sprintf "unexpected Error %s" e) false);
      match Par.branch_and_bound_stats ~pool ~m ~capacity ~bucket_cost items with
      | Ok (a2, _) ->
          check "pool reusable after poisoned run: same result"
            (fingerprint a.Search.best = fingerprint a2.Search.best)
      | Error e -> check (Printf.sprintf "clean rerun failed: %s" e) false);

  if !failures > 0 then begin
    Printf.printf "stress_steal: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "stress_steal: all checks passed"
