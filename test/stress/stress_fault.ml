(* Deterministic fault-injection stress (run via `dune build @stress`).

   The acceptance bar for the robustness work: under an injected
   processor crash and 1.5x WCEC overruns, every shedding/repartitioning
   degradation policy must finish with ZERO deadline misses in BOTH
   simulators (frame and EDF) while the no-op baseline demonstrably
   misses. All scenarios are derived from fixed seeds, so a failure here
   is reproducible, not flaky. *)

open Rt_core
module Fault = Rt_fault.Fault
module Degrade = Rt_fault.Degrade

let failures = ref 0

let check name ok =
  if ok then Printf.printf "  [ok]   %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  [FAIL] %s\n%!" name
  end

let ok_exn what = function
  | Ok v -> v
  | Error e -> failwith (what ^ ": " ^ e)

let proc_ideal =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let proc_levels =
  Rt_power.Processor.xscale_levels ~dormancy:Rt_power.Processor.Dormant_disable

let shed_policies =
  [ Degrade.Shed_density; Degrade.Shed_marginal; Degrade.Repartition_ltf ]

(* ------------------------------------------------------------------ *)
(* Frame simulator: crash at t=0 plus 1.5x overrun on every accepted
   task. The no-op plan loses a processor and under-provisions the rest;
   recovery re-plans on the survivors. *)

let frame_case () =
  print_endline "frame simulator: processor crash + 1.5x WCEC overrun";
  let p =
    Rt_expkit.Instances.frame_instance ~proc:proc_ideal ~seed:2026 ~n:12 ~m:4
      ~load:0.8 ()
  in
  let baseline = Greedy.ltf_reject p in
  let overruns =
    List.map
      (fun id -> Fault.Wcec_overrun { task_id = id; factor = 1.5 })
      (Solution.accepted_ids baseline)
  in
  let sc = Fault.Proc_crash { proc = 1; at = 0. } :: overruns in
  let no_op = ok_exn "no-op" (Degrade.recover_frame p sc ~baseline Degrade.No_op) in
  check "no-op baseline misses deadlines" (no_op.Degrade.misses <> []);
  List.iter
    (fun policy ->
      let r = ok_exn (Degrade.policy_name policy)
          (Degrade.recover_frame p sc ~baseline policy)
      in
      check (Degrade.policy_name policy ^ ": zero deadline misses")
        (r.Degrade.misses = []))
    shed_policies

(* ------------------------------------------------------------------ *)
(* EDF simulator: same fault classes over one hyper-period of a seeded
   periodic set. *)

let periodic_case () =
  print_endline "EDF simulator: processor crash + 1.5x WCEC overrun";
  let _p, tasks =
    Rt_expkit.Instances.periodic_instance ~proc:proc_levels ~seed:2026 ~n:8
      ~m:2 ~total_util:0.6 ()
  in
  let overruns =
    List.map
      (fun (t : Rt_task.Task.periodic) ->
        Fault.Wcec_overrun { task_id = t.id; factor = 1.5 })
      tasks
  in
  let sc = Fault.Proc_crash { proc = 1; at = 0. } :: overruns in
  let recover = Degrade.recover_periodic ~proc:proc_levels ~m:2 ~tasks sc in
  let no_op = ok_exn "no-op" (recover Degrade.No_op) in
  check "no-op baseline misses deadlines" (no_op.Degrade.misses <> []);
  List.iter
    (fun policy ->
      let r = ok_exn (Degrade.policy_name policy) (recover policy) in
      check (Degrade.policy_name policy ^ ": zero deadline misses")
        (r.Degrade.misses = []))
    shed_policies

(* ------------------------------------------------------------------ *)
(* Seeded sweep: across many generated scenarios (crashes, overruns and
   derates all active), the shedding policies must never miss in the
   frame simulator. *)

let generated_sweep () =
  print_endline "seeded scenario sweep: shed policies never miss";
  let rates =
    {
      Fault.overrun_prob = 0.3;
      overrun_factor = 1.5;
      crash_prob = 0.3;
      derate_prob = 0.3;
      derate_factor = 0.8;
    }
  in
  let bad = ref [] in
  for seed = 1 to 25 do
    let p =
      Rt_expkit.Instances.frame_instance ~proc:proc_ideal ~seed ~n:10 ~m:3
        ~load:0.7 ()
    in
    let baseline = Greedy.ltf_reject p in
    let rng = Rt_prelude.Rng.create ~seed:(seed * 7919) in
    let sc =
      Fault.gen rng rates
        ~task_ids:
          (List.map (fun (it : Rt_task.Task.item) -> it.item_id) p.Problem.items)
        ~m:p.Problem.m ~horizon:p.Problem.horizon
    in
    List.iter
      (fun policy ->
        match Degrade.recover_frame p sc ~baseline policy with
        | Error e ->
            bad := Printf.sprintf "seed %d %s: %s" seed
                (Degrade.policy_name policy) e :: !bad
        | Ok r ->
            if r.Degrade.misses <> [] then
              bad := Printf.sprintf "seed %d %s: misses" seed
                  (Degrade.policy_name policy) :: !bad)
      shed_policies
  done;
  List.iter (fun m -> Printf.printf "    %s\n" m) !bad;
  check "25 seeds x 3 policies, zero misses everywhere" (!bad = [])

let () =
  frame_case ();
  periodic_case ();
  generated_sweep ();
  if !failures > 0 then begin
    Printf.printf "stress_fault: %d check(s) FAILED\n" !failures;
    exit 1
  end
  else print_endline "stress_fault: all checks passed"
