(* Seeded property stress (run via `dune build @stress`).

   200 random instances — 100 frame, 100 periodic, spanning light load
   through heavy overload on both ideal and level-domain processors —
   and every rejection heuristic (plus its local-search polish) must
   emit a solution that passes full [Rt_core.Solution.validate],
   including the concrete frame-simulator round trip. Everything is
   derived from the loop seed, so failures reproduce exactly. *)

open Rt_core

let failures = ref 0

let proc_ideal =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let proc_levels =
  Rt_power.Processor.xscale_levels ~dormancy:Rt_power.Processor.Dormant_disable

let algorithms =
  Greedy.named
  @ List.map
      (fun (name, alg) -> (name ^ "+ls", Local_search.with_local_search alg))
      Greedy.named

let check_instance label p =
  List.iter
    (fun (name, alg) ->
      match Solution.validate p (alg p) with
      | Ok () -> ()
      | Error e ->
          incr failures;
          Printf.printf "[FAIL] %s / %s: %s\n%!" label name e)
    algorithms

let () =
  let instances = ref 0 in
  for seed = 1 to 100 do
    (* frame instances: load 0.4 .. 2.2 (overload forces rejections) *)
    let load = 0.4 +. (float_of_int (seed mod 5) *. 0.45) in
    let m = 1 + (seed mod 4) in
    let n = 6 + (seed mod 10) in
    let proc = if seed mod 2 = 0 then proc_ideal else proc_levels in
    let p = Rt_expkit.Instances.frame_instance ~proc ~seed ~n ~m ~load () in
    check_instance (Printf.sprintf "frame seed=%d m=%d load=%.2f" seed m load) p;
    incr instances;
    (* periodic instances: total utilization 0.3 .. 1.8 *)
    let util = 0.3 +. (float_of_int (seed mod 4) *. 0.5) in
    let p2, _tasks =
      Rt_expkit.Instances.periodic_instance ~proc ~seed ~n ~m ~total_util:util
        ()
    in
    check_instance
      (Printf.sprintf "periodic seed=%d m=%d util=%.2f" seed m util)
      p2;
    incr instances
  done;
  Printf.printf "stress_property: %d instances x %d algorithms validated\n"
    !instances (List.length algorithms);
  if !failures > 0 then begin
    Printf.printf "stress_property: %d validation failure(s)\n" !failures;
    exit 1
  end
