(* Seeded property stress (run via `dune build @stress`).

   300 random instances and every rejection heuristic (plus its
   local-search polish). The frame half draws from the shared
   [Rt_check.Instance] generator and pushes every algorithm through the
   full differential-oracle registry (structural validation, lower
   bound, exact optimum on small instances, simulator replay). The
   periodic half keeps the wider-period workloads the frame model
   cannot express and validates each solution end to end. Everything is
   derived from the loop seed, so failures reproduce exactly. *)

open Rt_core

let failures = ref 0

let proc_ideal =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let proc_levels =
  Rt_power.Processor.xscale_levels ~dormancy:Rt_power.Processor.Dormant_disable

let algorithms = Rt_check.Fuzz.algorithms

let stress_params =
  {
    Rt_check.Instance.default_params with
    Rt_check.Instance.n_hi = 16;
    m_hi = 4;
    load_lo = 0.4;
    load_hi = 2.2;
  }

let check_frame_instance seed =
  let rng = Rt_prelude.Rng.create ~seed:(seed * 65_537) in
  let inst = Rt_check.Instance.generate rng stress_params in
  let label =
    Printf.sprintf "frame seed=%d %s" seed (Rt_check.Instance.label inst)
  in
  match Rt_check.Oracle.context inst with
  | Error e ->
      incr failures;
      Printf.printf "[FAIL] %s: no context: %s\n%!" label e
  | Ok ctx ->
      List.iter
        (fun (name, alg) ->
          let s = alg (Rt_check.Oracle.problem ctx) in
          match
            Rt_check.Oracle.first_failure (Rt_check.Oracle.run_all ctx s)
          with
          | None -> ()
          | Some (oracle, e) ->
              incr failures;
              Printf.printf "[FAIL] %s / %s / %s: %s\n%!" label name oracle e)
        algorithms

let check_periodic_instance label p =
  List.iter
    (fun (name, alg) ->
      match Solution.validate p (alg p) with
      | Ok () -> ()
      | Error e ->
          incr failures;
          Printf.printf "[FAIL] %s / %s: %s\n%!" label name e)
    algorithms

let () =
  let instances = ref 0 in
  for seed = 1 to 100 do
    (* frame instances through the shared generator + oracle registry *)
    check_frame_instance seed;
    check_frame_instance (seed + 1000);
    instances := !instances + 2;
    (* periodic instances: total utilization 0.3 .. 1.8 *)
    let util = 0.3 +. (float_of_int (seed mod 4) *. 0.5) in
    let m = 1 + (seed mod 4) in
    let n = 6 + (seed mod 10) in
    let proc = if seed mod 2 = 0 then proc_ideal else proc_levels in
    let p2, _tasks =
      Rt_expkit.Instances.periodic_instance ~proc ~seed ~n ~m ~total_util:util
        ()
    in
    check_periodic_instance
      (Printf.sprintf "periodic seed=%d m=%d util=%.2f" seed m util)
      p2;
    incr instances
  done;
  Printf.printf "stress_property: %d instances x %d algorithms validated\n"
    !instances (List.length algorithms);
  if !failures > 0 then begin
    Printf.printf "stress_property: %d validation failure(s)\n" !failures;
    exit 1
  end
