(* Tests for rt_speed: the optimal energy-rate primitive, the synchronized
   Lagrange solver, and break-even/procrastination analysis. *)

open Rt_power
open Rt_speed
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let cubic_disable = Processor.cubic ()
let xscale_enable =
  Processor.xscale ~dormancy:(Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })
let xscale_disable = Processor.xscale ~dormancy:Processor.Dormant_disable
let levels_disable = Processor.xscale_levels ~dormancy:Processor.Dormant_disable
let levels_enable =
  Processor.xscale_levels
    ~dormancy:(Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let rate_exn proc u =
  match Energy_rate.rate proc ~u with
  | Some r -> r
  | None -> Alcotest.failf "expected feasible rate at u=%g" u

let plan_exn proc u =
  match Energy_rate.optimal proc ~u with
  | Some p -> p
  | None -> Alcotest.failf "expected feasible plan at u=%g" u

(* ------------------------------------------------------------------ *)
(* Energy_rate: ideal processors *)

let test_ideal_disable_no_leakage () =
  (* P(s) = s^3, dormant-disable, no leakage: run exactly at u *)
  check_float 1e-12 "rate u=0.5 is P(0.5)" 0.125 (rate_exn cubic_disable 0.5);
  check_float 1e-12 "rate u=1" 1. (rate_exn cubic_disable 1.);
  check_float 1e-12 "rate u=0" 0. (rate_exn cubic_disable 0.)

let test_ideal_disable_leakage_always_paid () =
  (* dormant-disable pays p_ind even at u=0 *)
  check_float 1e-12 "idle pays leakage" 0.08 (rate_exn xscale_disable 0.);
  (* at load u: p_ind + 1.52 u^3 (running at exactly u is best) *)
  check_float 1e-9 "u=0.5" (0.08 +. (1.52 *. 0.125)) (rate_exn xscale_disable 0.5)

let test_ideal_enable_critical_clamp () =
  (* dormant-enable clamps at the critical speed below it *)
  let s_star = Power_model.critical_speed xscale_enable.Processor.model ~s_max:1. in
  let u = s_star /. 2. in
  let expected = u *. Power_model.energy_per_cycle xscale_enable.Processor.model s_star in
  check_float 1e-9 "below critical: run at s*, sleep" expected
    (rate_exn xscale_enable u);
  (* above the critical speed: run continuously at u *)
  let u2 = Float.max 0.9 (s_star +. 0.1) in
  check_float 1e-9 "above critical: P(u)"
    (Power_model.power xscale_enable.Processor.model u2)
    (rate_exn xscale_enable u2);
  check_float 1e-12 "u=0 sleeps free" 0. (rate_exn xscale_enable 0.)

let test_infeasible_above_smax () =
  check_bool "u > s_max infeasible" true (Energy_rate.optimal cubic_disable ~u:1.1 = None);
  check_bool "levels: u > top infeasible" true
    (Energy_rate.optimal levels_disable ~u:1.05 = None)

(* ------------------------------------------------------------------ *)
(* Energy_rate: discrete levels *)

let test_levels_two_level_split () =
  (* u between 0.6 and 0.8 mixes those two levels (no-leakage variant) *)
  let proc =
    Processor.make
      ~model:(Power_model.make ~coeff:1. ~alpha:3. ())
      ~domain:(Processor.Levels [| 0.2; 0.4; 0.6; 0.8; 1.0 |])
      ~dormancy:Processor.Dormant_disable
  in
  let u = 0.7 in
  let plan = plan_exn proc u in
  check_float 1e-9 "throughput = u" u (Energy_rate.plan_throughput plan);
  (* linear interpolation of P between the two adjacent levels *)
  let p_lo = 0.6 ** 3. and p_hi = 0.8 ** 3. in
  let expected = p_lo +. ((u -. 0.6) /. 0.2 *. (p_hi -. p_lo)) in
  check_float 1e-9 "interpolated rate" expected plan.Energy_rate.rate;
  check_bool "plan validates" true
    (Energy_rate.validate proc ~u plan = Ok ())

let test_levels_exact_level () =
  let plan = plan_exn levels_disable 0.6 in
  check_float 1e-9 "rate at an exact level"
    (Power_model.power levels_disable.Processor.model 0.6)
    plan.Energy_rate.rate

let test_levels_enable_can_sleep () =
  (* tiny load on a dormant-enable leveled processor: run at the most
     efficient level briefly and sleep; rate is proportional to u *)
  let u = 0.01 in
  let r = rate_exn levels_enable u in
  let best_per_cycle =
    List.fold_left Float.min Float.infinity
      (List.map
         (Power_model.energy_per_cycle levels_enable.Processor.model)
         [ 0.15; 0.4; 0.6; 0.8; 1.0 ])
  in
  check_float 1e-9 "rate = u * best per-cycle energy" (u *. best_per_cycle) r

let test_levels_disable_idle_mixing () =
  (* dormant-disable leveled processor at u below the bottom level: run at
     some level part-time and idle at leakage the rest; never worse than
     always-on at the bottom level *)
  let u = 0.05 in
  let r = rate_exn levels_disable u in
  let bottom = 0.15 in
  let always_bottom =
    (* occupancy u/bottom at P(bottom), idle rest at leakage *)
    (u /. bottom *. Power_model.dynamic_power levels_disable.Processor.model bottom)
    +. 0.08
  in
  check_bool "hull no worse than naive bottom-level plan" true
    (Fc.leq ~eps:1e-9 r always_bottom)

let prop_rate_monotone_in_load =
  qtest "rate is non-decreasing in the load (all processor kinds)"
    QCheck2.Gen.(pair (int_range 0 3) (float_range 0. 0.99))
    (fun (kind, u) ->
      let proc =
        match kind with
        | 0 -> cubic_disable
        | 1 -> xscale_enable
        | 2 -> levels_disable
        | _ -> levels_enable
      in
      let r1 = rate_exn proc u and r2 = rate_exn proc (u +. 0.01) in
      Fc.leq ~eps:1e-9 r1 r2)

let prop_rate_convex =
  qtest "rate is midpoint-convex in the load"
    QCheck2.Gen.(
      triple (int_range 0 3) (float_range 0. 1.) (float_range 0. 1.))
    (fun (kind, a, b) ->
      let proc =
        match kind with
        | 0 -> cubic_disable
        | 1 -> xscale_enable
        | 2 -> levels_disable
        | _ -> levels_enable
      in
      let mid = (a +. b) /. 2. in
      rate_exn proc mid <= ((rate_exn proc a +. rate_exn proc b) /. 2.) +. 1e-9)

let prop_plans_validate =
  qtest "every emitted plan passes validation"
    QCheck2.Gen.(pair (int_range 0 3) (float_range 0. 1.))
    (fun (kind, u) ->
      let proc =
        match kind with
        | 0 -> cubic_disable
        | 1 -> xscale_enable
        | 2 -> levels_disable
        | _ -> levels_enable
      in
      match Energy_rate.optimal proc ~u with
      | None -> false
      | Some plan -> Energy_rate.validate proc ~u plan = Ok ())

let prop_no_single_speed_beats_plan =
  qtest "no feasible single sustained speed beats the optimal plan"
    QCheck2.Gen.(pair (float_range 0.01 1.) (float_range 0.01 0.4))
    (fun (u, p_ind) ->
      let proc =
        Processor.make
          ~model:(Power_model.make ~p_ind ~coeff:1. ~alpha:3. ())
          ~domain:(Processor.Ideal { s_min = 0.; s_max = 1. })
          ~dormancy:(Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })
      in
      let r = rate_exn proc u in
      (* any single speed s >= u: run for u/s of the time, sleep rest *)
      List.for_all
        (fun s ->
          if s < u then true
          else
            r
            <= (u /. s *. Power_model.power proc.Processor.model s) +. 1e-9)
        (Rt_prelude.Math_util.frange ~lo:u ~hi:1. ~steps:50))

let test_power_factor_scales_dynamic_term () =
  let r1 = rate_exn cubic_disable 0.5 in
  match Energy_rate.rate ~power_factor:2. cubic_disable ~u:0.5 with
  | Some r2 -> check_float 1e-12 "factor 2 doubles dynamic-only rate" (2. *. r1) r2
  | None -> Alcotest.fail "feasible"

(* ------------------------------------------------------------------ *)
(* Sync_global *)

let test_sync_rejects_bad_model () =
  let leaky = Power_model.make ~p_ind:0.1 ~coeff:1. ~alpha:3. () in
  check_bool "p_ind rejected" true
    (Result.is_error (Sync_global.solve leaky ~window:1. ~workloads:[| 1. |]))

let test_sync_single_processor () =
  let m = Power_model.make ~coeff:1. ~alpha:3. () in
  match Sync_global.solve m ~window:2. ~workloads:[| 1. |] with
  | Error e -> Alcotest.fail e
  | Ok s ->
      (* one processor: run at w/D the whole window *)
      check_float 1e-9 "energy = Pd(w/D)·D" (0.5 ** 3. *. 2.) s.Sync_global.energy;
      check_float 1e-9 "peak speed" 0.5 s.Sync_global.peak_speed

let test_sync_equal_workloads () =
  let m = Power_model.make ~coeff:1. ~alpha:3. () in
  match Sync_global.solve m ~window:1. ~workloads:[| 0.6; 0.6; 0.6 |] with
  | Error e -> Alcotest.fail e
  | Ok s ->
      (* all equal: single interval, all three active at speed 0.6 *)
      check_float 1e-9 "energy" (3. *. (0.6 ** 3.)) s.Sync_global.energy;
      Alcotest.(check int) "one interval" 1 (List.length s.Sync_global.intervals)

let test_sync_durations_sum_to_window () =
  let m = Power_model.make ~coeff:1. ~alpha:3. () in
  match Sync_global.solve m ~window:5. ~workloads:[| 0.5; 1.5; 2.5; 2.5 |] with
  | Error e -> Alcotest.fail e
  | Ok s ->
      let total =
        List.fold_left
          (fun acc i -> acc +. i.Sync_global.duration)
          0. s.Sync_global.intervals
      in
      check_float 1e-9 "durations fill the window" 5. total

let test_sync_beats_or_matches_worse_splits () =
  (* the KKT split should beat the naive equal-time split *)
  let m = Power_model.make ~coeff:1. ~alpha:3. () in
  let workloads = [| 1.0; 3.0 |] in
  match Sync_global.solve m ~window:2. ~workloads with
  | Error e -> Alcotest.fail e
  | Ok s ->
      (* naive: t1 = t2 = 1; deltas 1 and 2; energy = 2·Pd(1)·1 + 1·Pd(2)·1 *)
      let naive = (2. *. 1.) +. (1. *. 8.) in
      check_bool "KKT split no worse than equal split" true
        (Fc.leq ~eps:1e-9 s.Sync_global.energy naive)

let prop_sync_no_worse_than_any_two_interval_split =
  qtest "2-proc KKT energy <= any sampled manual split" ~count:60
    QCheck2.Gen.(pair (float_range 0.2 1.5) (float_range 1.5 3.))
    (fun (w1, w2) ->
      let m = Power_model.make ~coeff:1. ~alpha:3. () in
      match Sync_global.solve m ~window:2. ~workloads:[| w1; w2 |] with
      | Error _ -> false
      | Ok s ->
          List.for_all
            (fun t1 ->
              let t2 = 2. -. t1 in
              let delta = w2 -. w1 in
              let manual =
                (2. *. (w1 /. t1) ** 3. *. t1)
                +. (if delta > 0. then (delta /. t2) ** 3. *. t2 else 0.)
              in
              Fc.leq ~eps:1e-6 s.Sync_global.energy manual)
            (Rt_prelude.Math_util.frange ~lo:0.2 ~hi:1.8 ~steps:30))

let prop_sync_staircase_structure =
  qtest ~count:60 "sync schedule: active counts strictly decrease, speeds rise"
    QCheck2.Gen.(list_size (int_range 2 6) (float_range 0.1 2.))
    (fun workloads ->
      let m = Power_model.make ~coeff:1. ~alpha:3. () in
      match
        Sync_global.solve m ~window:1. ~workloads:(Array.of_list workloads)
      with
      | Error _ -> false
      | Ok s ->
          let rec ok = function
            | a :: (b :: _ as rest) ->
                a.Sync_global.active > b.Sync_global.active
                && a.Sync_global.speed <= b.Sync_global.speed +. 1e-9
                && ok rest
            | _ -> true
          in
          ok s.Sync_global.intervals)

let test_sync_independent_reference () =
  let m = Power_model.make ~coeff:1. ~alpha:3. () in
  let e = Sync_global.energy_independent m ~window:2. ~workloads:[| 1.; 2. |] in
  check_float 1e-9 "independent rails energy"
    (((0.5 ** 3.) *. 2.) +. ((1. ** 3.) *. 2.))
    e;
  (* synchronized constraint can only cost more *)
  match Sync_global.solve m ~window:2. ~workloads:[| 1.; 2. |] with
  | Error err -> Alcotest.fail err
  | Ok s -> check_bool "sync >= independent" true (s.Sync_global.energy >= e -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Procrastinate *)

let enable ~t_sw ~e_sw ~p_ind =
  Processor.make
    ~model:(Power_model.make ~p_ind ~coeff:1.52 ~alpha:3. ())
    ~domain:(Processor.Ideal { s_min = 0.; s_max = 1. })
    ~dormancy:(Processor.Dormant_enable { t_sw; e_sw })

let test_break_even () =
  let p = enable ~t_sw:0.1 ~e_sw:0.4 ~p_ind:0.08 in
  check_float 1e-9 "dominated by energy" (0.4 /. 0.08)
    (Procrastinate.break_even_time p);
  let p2 = enable ~t_sw:10. ~e_sw:0.4 ~p_ind:0.08 in
  check_float 1e-9 "dominated by switch time" 10. (Procrastinate.break_even_time p2);
  check_bool "disable never sleeps" true
    (Procrastinate.break_even_time cubic_disable = Float.infinity)

let test_idle_energy () =
  let p = enable ~t_sw:0.1 ~e_sw:0.4 ~p_ind:0.08 in
  (* short gap: staying awake is cheaper *)
  check_float 1e-12 "short gap awake" (0.08 *. 1.) (Procrastinate.idle_energy p ~interval:1.);
  (* long gap: sleeping caps the cost at E_sw *)
  check_float 1e-12 "long gap sleeps" 0.4 (Procrastinate.idle_energy p ~interval:100.);
  check_bool "should_sleep long" true (Procrastinate.should_sleep p ~interval:100.);
  check_bool "should_sleep short" false (Procrastinate.should_sleep p ~interval:1.)

let test_idle_fragmentation_hurts () =
  let p = enable ~t_sw:0.1 ~e_sw:0.4 ~p_ind:0.08 in
  let coalesced = Procrastinate.idle_energy_fragmented p ~total_idle:50. ~gaps:1 in
  let fragmented = Procrastinate.idle_energy_fragmented p ~total_idle:50. ~gaps:100 in
  check_bool "fragmented idle costs at least as much" true
    (fragmented >= coalesced -. 1e-12);
  check_float 1e-12 "coalesced = one sleep" 0.4 coalesced

let prop_fragmentation_monotone =
  qtest "more gaps never save energy"
    QCheck2.Gen.(pair (float_range 1. 100.) (int_range 1 20))
    (fun (total_idle, gaps) ->
      let p = enable ~t_sw:0.05 ~e_sw:0.3 ~p_ind:0.08 in
      Procrastinate.idle_energy_fragmented p ~total_idle ~gaps
      <= Procrastinate.idle_energy_fragmented p ~total_idle ~gaps:(gaps * 2)
         +. 1e-9)

let () =
  Alcotest.run "rt_speed"
    [
      ( "energy_rate_ideal",
        [
          Alcotest.test_case "disable, no leakage" `Quick
            test_ideal_disable_no_leakage;
          Alcotest.test_case "disable, leakage" `Quick
            test_ideal_disable_leakage_always_paid;
          Alcotest.test_case "enable, critical clamp" `Quick
            test_ideal_enable_critical_clamp;
          Alcotest.test_case "infeasible above s_max" `Quick
            test_infeasible_above_smax;
          Alcotest.test_case "power factor" `Quick
            test_power_factor_scales_dynamic_term;
        ] );
      ( "energy_rate_levels",
        [
          Alcotest.test_case "two-level split" `Quick test_levels_two_level_split;
          Alcotest.test_case "exact level" `Quick test_levels_exact_level;
          Alcotest.test_case "enable sleeps" `Quick test_levels_enable_can_sleep;
          Alcotest.test_case "disable idle mixing" `Quick
            test_levels_disable_idle_mixing;
        ] );
      ( "energy_rate_properties",
        [
          prop_rate_monotone_in_load;
          prop_rate_convex;
          prop_plans_validate;
          prop_no_single_speed_beats_plan;
        ] );
      ( "sync_global",
        [
          Alcotest.test_case "model validation" `Quick test_sync_rejects_bad_model;
          Alcotest.test_case "single processor" `Quick test_sync_single_processor;
          Alcotest.test_case "equal workloads" `Quick test_sync_equal_workloads;
          Alcotest.test_case "durations fill window" `Quick
            test_sync_durations_sum_to_window;
          Alcotest.test_case "beats equal split" `Quick
            test_sync_beats_or_matches_worse_splits;
          prop_sync_no_worse_than_any_two_interval_split;
          prop_sync_staircase_structure;
          Alcotest.test_case "independent reference" `Quick
            test_sync_independent_reference;
        ] );
      ( "procrastinate",
        [
          Alcotest.test_case "break-even" `Quick test_break_even;
          Alcotest.test_case "idle energy" `Quick test_idle_energy;
          Alcotest.test_case "fragmentation hurts" `Quick
            test_idle_fragmentation_hurts;
          prop_fragmentation_monotone;
        ] );
    ]
