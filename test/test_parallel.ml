(* Tests for rt_parallel: the domain pool, the determinism contracts of
   the portfolio / work-stealing search / parallel sweeps, and the
   wall-clock (not CPU-time) budget semantics. *)

module Fc = Rt_prelude.Float_cmp
module Pool = Rt_parallel.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_int_list = Alcotest.(check (list int))

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let instance ~seed ~n ~m ~load =
  Rt_expkit.Instances.frame_instance ~proc ~seed ~n ~m ~load ()

(* canonical rendering of a solution: rejected ids + per-bucket accepted
   ids — two runs agree iff these (and the cost) agree *)
let fingerprint (s : Rt_core.Solution.t) =
  let m = Rt_partition.Partition.m s.partition in
  List.concat
    (List.init m (fun j ->
         List.map
           (fun (it : Rt_task.Task.item) -> (j, it.Rt_task.Task.item_id))
           (Rt_partition.Partition.bucket s.partition j)))
  @ List.map (fun id -> (-1, id)) (Rt_core.Solution.rejected_ids s)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_single_domain () =
  Pool.with_pool ~domains:1 (fun pool ->
      let xs = List.init 10 Fun.id in
      check_int_list "submission order"
        (List.map (fun x -> x * x) xs)
        (Pool.map ~pool (fun x -> x * x) xs));
  (* no pool: plain List.map *)
  check_int_list "no pool" [ 2; 4; 6 ] (Pool.map (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_many_tasks () =
  (* far more tasks than domains; results must still come back in
     submission order *)
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 200 Fun.id in
      check_int_list "200 tasks over 4 domains"
        (List.map (fun x -> (x * 7) mod 31) xs)
        (Pool.map ~pool (fun x -> (x * 7) mod 31) xs))

let test_pool_exception_propagates () =
  Pool.with_pool ~domains:3 (fun pool ->
      (* two jobs raise; the lowest-index exception must surface, after
         every job ran *)
      let ran = Array.make 8 false in
      (match
         Pool.run_list pool
           (List.init 8 (fun i () ->
                ran.(i) <- true;
                if i = 3 then failwith "boom3";
                if i = 6 then failwith "boom6";
                i))
       with
      | _ -> Alcotest.fail "expected the job exception to propagate"
      | exception Failure msg -> check_string "lowest index wins" "boom3" msg);
      check_bool "every job still ran" true (Array.for_all Fun.id ran);
      (* the pool survives a failing batch *)
      check_int_list "pool usable after failure" [ 1; 2; 3 ]
        (Pool.map ~pool Fun.id [ 1; 2; 3 ]))

(* A raising task must not leave the pool's mutex (or the batch's
   completion mutex) held: after a failing run, further batches AND a
   clean shutdown must both go through.  This is the regression test
   for the Mutex.protect refactor — with a leaked lock, the shutdown
   below deadlocks instead of returning. *)
let test_pool_raising_task_leaves_pool_usable () =
  let pool = Pool.create ~domains:2 in
  (match Pool.run_list pool [ (fun () -> failwith "kaboom") ] with
  | _ -> Alcotest.fail "expected the job exception to propagate"
  | exception Failure msg -> check_string "job exception surfaced" "kaboom" msg);
  check_int_list "next batch still runs" [ 10; 20 ]
    (Pool.map ~pool (fun x -> x * 10) [ 1; 2 ]);
  Pool.shutdown pool;
  check_bool "shutdown returned (no leaked lock)" true true

let test_jobs_validation () =
  let check_err name r =
    match r with
    | Error msg ->
        check_bool (name ^ " has a message") true (String.length msg > 0)
    | Ok j -> Alcotest.fail (Printf.sprintf "%s: expected Error, got Ok %d" name j)
  in
  (match Pool.parse_jobs "4" with
  | Ok j -> check_int "parse 4" 4 j
  | Error e -> Alcotest.fail e);
  (match Pool.parse_jobs " 2 " with
  | Ok j -> check_int "whitespace tolerated" 2 j
  | Error e -> Alcotest.fail e);
  check_err "parse 0" (Pool.parse_jobs "0");
  check_err "parse -3" (Pool.parse_jobs "-3");
  check_err "parse abc" (Pool.parse_jobs "abc");
  check_err "parse empty" (Pool.parse_jobs "");
  (* the rt_sched path: --jobs 0 must be a clear error, --jobs n wins
     over the environment, and the message names the offending value *)
  check_err "--jobs 0 rejected" (Pool.resolve_jobs ~jobs:0 ());
  (match Pool.resolve_jobs ~jobs:0 () with
  | Error msg ->
      check_bool "message names the bad count" true
        (String.length msg > 0
        && String.index_opt msg '0' <> None)
  | Ok _ -> Alcotest.fail "--jobs 0 accepted");
  match Pool.resolve_jobs ~jobs:3 () with
  | Ok j -> check_int "--jobs 3 accepted" 3 j
  | Error e -> Alcotest.fail e

let test_pool_lifecycle () =
  (match Pool.create ~domains:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains=0 must be refused");
  (* shutdown joins cleanly (regression: the workers used to watch a
     stale copy of the pool record and never saw [stopping]) and is
     idempotent; a shut-down pool refuses work *)
  let pool = Pool.create ~domains:2 in
  check_int "size" 2 (Pool.size pool);
  check_int_list "runs" [ 0; 1; 4; 9 ]
    (Pool.map ~pool (fun x -> x * x) [ 0; 1; 2; 3 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (match Pool.run_list pool [ (fun () -> 1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "run_list after shutdown must be refused");
  (* with_pool shuts down even when the body raises *)
  match Pool.with_pool ~domains:2 (fun _ -> failwith "body") with
  | exception Failure msg -> check_string "body exception" "body" msg
  | _ -> Alcotest.fail "expected the body exception"

(* ------------------------------------------------------------------ *)
(* Clock / wall-clock budgets *)

let test_clock_monotone () =
  let t0 = Rt_prelude.Clock.now () in
  let n0 = Rt_prelude.Clock.now_ns () in
  let acc = ref 0. in
  for i = 1 to 100_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  ignore !acc;
  check_bool "ns monotone" true (Int64.compare (Rt_prelude.Clock.now_ns ()) n0 >= 0);
  check_bool "elapsed non-negative" true
    (Fc.exact_ge (Rt_prelude.Clock.elapsed ~since:t0) 0.)

(* THE budget regression this PR fixes: [time_budget] used to be measured
   with [Sys.time], which is process CPU time summed over every domain —
   a busy sibling domain made the budget expire at roughly half the
   wall-clock time it promised. With the monotonic clock, a budgeted
   search next to a spinning sibling still gets (at least) its full
   wall-clock budget. *)
let test_budget_is_wall_clock_under_busy_sibling () =
  let budget = 0.3 in
  (* hard enough that the budget, not completion, ends the search *)
  let p = instance ~seed:21 ~n:18 ~m:4 ~load:1.5 in
  let stop = Atomic.make false in
  let sibling =
    Domain.spawn (fun () ->
        let x = ref 0.0 in
        while not (Atomic.get stop) do
          x := sqrt (!x +. 2.)
        done;
        !x)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join sibling))
    (fun () ->
      let t0 = Rt_prelude.Clock.now () in
      match Rt_core.Exact.branch_and_bound_budgeted ~time_budget:budget p with
      | Error e -> Alcotest.failf "budgeted: %s" e
      | Ok b ->
          let wall = Rt_prelude.Clock.elapsed ~since:t0 in
          check_bool "budget ran out" true b.Rt_core.Exact.exhausted;
          (* CPU-time accounting with one spinning sibling would cut this
             to ~budget/2 of wall time; leave slack for polling jitter *)
          check_bool
            (Printf.sprintf "got the full wall-clock budget (%.3fs >= %.3fs)"
               wall (0.9 *. budget))
            true
            (Fc.exact_ge wall (0.9 *. budget)))

let test_expired_budget_returns_seed () =
  let p = instance ~seed:5 ~n:10 ~m:3 ~load:1.5 in
  match Rt_core.Exact.branch_and_bound_budgeted ~time_budget:0. p with
  | Error e -> Alcotest.failf "budgeted: %s" e
  | Ok b ->
      check_bool "exhausted" true b.Rt_core.Exact.exhausted;
      (* the seed incumbent rejects everything: still a valid solution *)
      check_bool "seed validates" true
        (Result.is_ok (Rt_core.Solution.validate p b.Rt_core.Exact.solution))

(* ------------------------------------------------------------------ *)
(* Snapshot immunity (regression for the dead double-copy at the
   incumbent snapshot): the solution a budgeted search returns was
   snapshotted mid-flight, while the search went on mutating its live
   bucket arrays — a completed budgeted run must therefore agree exactly
   with the independent from-scratch optimum, for every seed. *)

let test_incumbent_snapshot_immune () =
  List.iter
    (fun seed ->
      let p = instance ~seed ~n:10 ~m:3 ~load:1.6 in
      let reference = Rt_core.Exact.branch_and_bound p in
      match Rt_core.Exact.branch_and_bound_budgeted p with
      | Error e -> Alcotest.failf "budgeted: %s" e
      | Ok b ->
          check_bool "completed" false b.Rt_core.Exact.exhausted;
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "seed %d matches branch_and_bound" seed)
            (fingerprint reference)
            (fingerprint b.Rt_core.Exact.solution))
    (List.init 10 (fun i -> 100 + i))

(* ------------------------------------------------------------------ *)
(* Determinism: parallel == sequential, byte for byte *)

let seeds20 = List.init 20 (fun i -> 1 + (13 * i))

let test_portfolio_deterministic () =
  let outcomes domains =
    let run pool =
      List.map
        (fun seed ->
          let p = instance ~seed ~n:10 ~m:3 ~load:1.5 in
          match Rt_parallel.Portfolio.run ?pool p with
          | Error e -> Alcotest.failf "portfolio: %s" e
          | Ok o ->
              ( o.Rt_parallel.Portfolio.winner,
                o.Rt_parallel.Portfolio.cost,
                fingerprint o.Rt_parallel.Portfolio.solution ))
        seeds20
    in
    if domains = 0 then run None
    else Pool.with_pool ~domains (fun pool -> run (Some pool))
  in
  let reference = outcomes 0 in
  List.iter
    (fun domains ->
      List.iter2
        (fun (w, c, f) (w', c', f') ->
          check_string "winner" w w';
          check_bool "cost bit-identical" true (Fc.exact_eq c c');
          Alcotest.(check (list (pair int int))) "solution" f f')
        reference (outcomes domains))
    [ 1; 2; 4 ]

(* -- The work-stealing battery ------------------------------------- *)

(* 20 seeded instances spanning n = 10..16 and m in {2, 3}. The n >= 14
   instances run heavily overloaded (load 2.4): forced rejections keep
   the trees small enough that the full battery — 20 instances x 4 pool
   sizes x 3 split factors — completes in tens of seconds on one core,
   while still exercising deep, irregular search trees. *)
let battery_instances =
  List.init 20 (fun i ->
      let n = 10 + (i mod 7) in
      let seed = 40 + (17 * i) in
      let m = 2 + (i mod 2) in
      let load = if n >= 14 then 2.4 else 1.6 in
      (seed, n, m, instance ~seed ~n ~m ~load))

(* The tentpole contract: a completed work-stealing run is byte-identical
   to the sequential branch-and-bound at every pool size, split factor
   and steal schedule. Pool sizes 1/2/4/8 and split factors 1/4/16 cover
   no-parallelism, thief-heavy (8 workers on few cores), and the whole
   coarse-to-fine granulation range. *)
let test_ws_determinism_battery () =
  let cost p s =
    match Rt_core.Solution.cost p s with
    | Ok c -> c.Rt_core.Solution.total
    | Error e -> Alcotest.failf "cost: %s" e
  in
  let references =
    List.map
      (fun (seed, n, m, p) ->
        (seed, n, m, p, Rt_core.Exact.branch_and_bound p))
      battery_instances
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          List.iter
            (fun split_factor ->
              List.iter
                (fun (seed, n, m, p, reference) ->
                  match
                    Rt_parallel.Par_search.solve ~pool ~split_factor p
                  with
                  | Error e -> Alcotest.failf "par solve: %s" e
                  | Ok b ->
                      let tag =
                        Printf.sprintf
                          "seed %d n %d m %d domains %d split %d" seed n m
                          domains split_factor
                      in
                      check_bool (tag ^ ": completed") false
                        b.Rt_core.Exact.exhausted;
                      check_bool (tag ^ ": cost bit-identical") true
                        (Fc.exact_eq (cost p reference)
                           (cost p b.Rt_core.Exact.solution));
                      Alcotest.(check (list (pair int int)))
                        tag (fingerprint reference)
                        (fingerprint b.Rt_core.Exact.solution))
                references)
            [ 1; 4; 16 ]))
    [ 1; 2; 4; 8 ]

(* No subtree lost, none duplicated. With pruning disabled the parallel
   run must visit the whole tree: every expansion replaces one counted
   node by its children, so the subtree node counts plus the split count
   equal the sequential exhaustive visit count exactly — any lost
   subtree undercounts, any duplicated one overcounts. The per-subtree
   paths double-check structurally: strictly ascending in DFS order
   (each subtree ran exactly once) and pairwise prefix-free (no subtree
   ran both whole and split). *)
let test_ws_subtree_accounting () =
  let is_prefix p q =
    (* sorted lexicographically, a prefix immediately precedes its first
       extension — checking adjacent pairs covers every pair *)
    let rec go p q =
      match (p, q) with
      | [], _ -> true
      | _, [] -> false
      | (x : int) :: p', y :: q' -> x = y && go p' q'
    in
    go p q
  in
  List.iter
    (fun (n, m, seed) ->
      let p = instance ~seed ~n ~m ~load:1.6 in
      let capacity = Rt_core.Problem.capacity p in
      let bucket_cost = Rt_core.Problem.bucket_energy p in
      let items = p.Rt_core.Problem.items in
      let seq_nodes =
        match
          Rt_exact.Search.exhaustive_budgeted ~m ~capacity ~bucket_cost items
        with
        | Ok a ->
            check_bool "exhaustive completed" false a.Rt_exact.Search.exhausted;
            a.Rt_exact.Search.nodes
        | Error e -> Alcotest.failf "exhaustive: %s" e
      in
      List.iter
        (fun domains ->
          let run pool =
            List.iter
              (fun split_factor ->
                match
                  Rt_parallel.Par_search.branch_and_bound_stats ?pool
                    ~split_factor ~prune:false ~m ~capacity ~bucket_cost items
                with
                | Error e -> Alcotest.failf "par stats: %s" e
                | Ok (a, st) ->
                    let tag =
                      Printf.sprintf "n %d m %d domains %d split %d" n m
                        domains split_factor
                    in
                    let subtree_nodes =
                      List.fold_left
                        (fun acc (_, k) -> acc + k)
                        0 st.Rt_parallel.Par_search.subtrees
                    in
                    check_int
                      (tag ^ ": subtree nodes + splits = exhaustive nodes")
                      seq_nodes
                      (subtree_nodes + st.Rt_parallel.Par_search.splits);
                    check_int (tag ^ ": combined node count")
                      subtree_nodes a.Rt_exact.Search.nodes;
                    let rec pairs = function
                      | (p1, _) :: ((p2, _) :: _ as rest) ->
                          check_bool
                            (tag ^ ": paths strictly ascending (DFS)") true
                            (Rt_exact.Search.compare_path p1 p2 < 0);
                          check_bool (tag ^ ": paths prefix-free") false
                            (is_prefix p1 p2);
                          pairs rest
                      | _ -> ()
                    in
                    pairs st.Rt_parallel.Par_search.subtrees)
              [ 1; 4; 16 ]
          in
          if domains = 0 then run None
          else Pool.with_pool ~domains (fun pool -> run (Some pool)))
        [ 0; 2; 4 ])
    [ (10, 3, 40); (11, 2, 57); (12, 2, 74) ]

(* Budget exhaustion on the parallel path: validity without
   reproducibility. An expired deadline drains every pending subtree at
   its reject-the-rest seed, so even a zero budget — and a tiny
   per-subtree node budget on an instance far too big to finish — must
   come back exhausted, feasible, and fast. *)
let test_ws_budget_exhaustion_valid () =
  let p = instance ~seed:21 ~n:18 ~m:4 ~load:1.5 in
  let check_exhausted_valid tag b =
    check_bool (tag ^ ": exhausted") true b.Rt_core.Exact.exhausted;
    check_bool (tag ^ ": solution validates") true
      (Result.is_ok (Rt_core.Solution.validate p b.Rt_core.Exact.solution))
  in
  Pool.with_pool ~domains:4 (fun pool ->
      (match Rt_parallel.Par_search.solve ~pool ~time_budget:0. p with
      | Error e -> Alcotest.failf "zero budget: %s" e
      | Ok b -> check_exhausted_valid "zero budget" b);
      (match Rt_parallel.Par_search.solve ~pool ~time_budget:0.05 p with
      | Error e -> Alcotest.failf "50ms budget: %s" e
      | Ok b -> check_exhausted_valid "50ms budget" b);
      (* drain mode: the first exhausted subtree stops further expansion,
         so the dynamic frontier cannot outrun a small node budget *)
      let t0 = Rt_prelude.Clock.now () in
      match Rt_parallel.Par_search.solve ~pool ~node_budget:200 p with
      | Error e -> Alcotest.failf "node budget: %s" e
      | Ok b ->
          check_exhausted_valid "node budget 200" b;
          check_bool "drain mode terminates promptly" true
            (Fc.exact_lt (Rt_prelude.Clock.elapsed ~since:t0) 10.))

let test_runner_replicate_par_identical () =
  let seeds = Rt_expkit.Runner.seeds ~base:7 ~n:24 in
  let f seed = Float.of_int seed *. 1.25 in
  let reference = Rt_expkit.Runner.replicate ~seeds ~f in
  Pool.with_pool ~domains:3 (fun pool ->
      let par = Rt_expkit.Runner.replicate_par ~pool:(Some pool) ~seeds ~f in
      check_int "n" reference.Rt_prelude.Stats.n par.Rt_prelude.Stats.n;
      List.iter
        (fun (name, a, b) ->
          check_bool name true (Fc.exact_eq a b))
        [
          ("mean", reference.Rt_prelude.Stats.mean, par.Rt_prelude.Stats.mean);
          ( "stddev",
            reference.Rt_prelude.Stats.stddev,
            par.Rt_prelude.Stats.stddev );
          ("median", reference.Rt_prelude.Stats.median, par.Rt_prelude.Stats.median);
        ])

let test_fault_sweep_parallel_identical () =
  let reference = Rt_expkit.Exp_fault.sweep ~seeds:3 () in
  Pool.with_pool ~domains:4 (fun pool ->
      let par = Rt_expkit.Exp_fault.sweep ~pool ~seeds:3 () in
      check_int "rows" (List.length reference) (List.length par);
      List.iter2
        (fun (a : Rt_expkit.Exp_fault.row) (b : Rt_expkit.Exp_fault.row) ->
          check_string "policy" a.policy b.policy;
          List.iter
            (fun (name, x, y) -> check_bool name true (Fc.exact_eq x y))
            [
              ("fault_rate", a.fault_rate, b.fault_rate);
              ("cost_ratio", a.cost_ratio, b.cost_ratio);
              ("miss_pct", a.miss_pct, b.miss_pct);
              ("shed_pct", a.shed_pct, b.shed_pct);
            ])
        reference par)

let test_fuzz_parallel_identical () =
  let config = { Rt_check.Fuzz.default_config with Rt_check.Fuzz.count = 6 } in
  let reference = Rt_check.Fuzz.run ~config () in
  Pool.with_pool ~domains:3 (fun pool ->
      let par = Rt_check.Fuzz.run ~pool ~config () in
      (* the rendered report covers every counter and every failure's
         minimized instance — byte equality here is the contract *)
      check_string "report byte-identical"
        (Rt_check.Fuzz.summary reference)
        (Rt_check.Fuzz.summary par);
      check_int "instances" reference.Rt_check.Fuzz.instances
        par.Rt_check.Fuzz.instances)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "rt_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "single domain" `Quick test_pool_single_domain;
          Alcotest.test_case "tasks >> domains" `Quick test_pool_many_tasks;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "raising task leaves pool usable" `Quick
            test_pool_raising_task_leaves_pool_usable;
          Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
          Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotone" `Quick test_clock_monotone;
          Alcotest.test_case "wall-clock budget under busy sibling" `Slow
            test_budget_is_wall_clock_under_busy_sibling;
          Alcotest.test_case "expired budget returns seed" `Quick
            test_expired_budget_returns_seed;
        ] );
      ( "search",
        [
          Alcotest.test_case "incumbent snapshot immune" `Quick
            test_incumbent_snapshot_immune;
          Alcotest.test_case "work stealing: 20-instance determinism battery"
            `Slow test_ws_determinism_battery;
          Alcotest.test_case "work stealing: subtree accounting" `Slow
            test_ws_subtree_accounting;
          Alcotest.test_case "work stealing: budget exhaustion stays valid"
            `Slow test_ws_budget_exhaustion_valid;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "portfolio, 20 seeds x pool sizes" `Slow
            test_portfolio_deterministic;
          Alcotest.test_case "runner replicate" `Quick
            test_runner_replicate_par_identical;
          Alcotest.test_case "fault sweep" `Slow
            test_fault_sweep_parallel_identical;
          Alcotest.test_case "fuzz report" `Slow test_fuzz_parallel_identical;
        ] );
    ]
