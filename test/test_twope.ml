(* Tests for rt_twope: the heterogeneous DVS + non-DVS two-PE system. *)

open Rt_twope
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 80) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let dvs =
  Rt_power.Processor.make
    ~model:(Rt_power.Power_model.make ~coeff:1. ~alpha:3. ())
    ~domain:(Rt_power.Processor.Ideal { s_min = 0.; s_max = 1e6 })
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let sys_of kind =
  match Twope.system ~dvs ~alt_power:0.5 ~alt_kind:kind ~horizon:10. with
  | Ok s -> s
  | Error e -> failwith e

let independent = sys_of Twope.Workload_independent
let dependent = sys_of Twope.Workload_dependent

let tasks_of specs =
  List.mapi
    (fun id (w, a) -> Twope.task ~id ~dvs_weight:w ~alt_permille:a)
    specs

let cost_exn sys a =
  match Twope.cost sys a with Ok c -> c | Error e -> Alcotest.failf "cost: %s" e

(* ------------------------------------------------------------------ *)
(* model *)

let test_task_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  expect_invalid "zero weight" (fun () ->
      Twope.task ~id:0 ~dvs_weight:0. ~alt_permille:10);
  expect_invalid "permille 0" (fun () ->
      Twope.task ~id:0 ~dvs_weight:0.1 ~alt_permille:0);
  expect_invalid "permille > 1000" (fun () ->
      Twope.task ~id:0 ~dvs_weight:0.1 ~alt_permille:1001)

let test_cost_independent () =
  let tasks = tasks_of [ (0.5, 300); (0.3, 400) ] in
  (* everything kept: DVS at 0.8, alt constant *)
  let a = { Twope.kept = tasks; offloaded = [] } in
  check_float 1e-9 "all kept" ((0.8 ** 3. *. 10.) +. (0.5 *. 10.))
    (cost_exn independent a);
  (* everything offloaded: DVS idle (sleeps), alt constant *)
  let b = { Twope.kept = []; offloaded = tasks } in
  check_float 1e-9 "all offloaded" (0.5 *. 10.) (cost_exn independent b)

let test_cost_dependent_scales () =
  let tasks = tasks_of [ (0.5, 300) ] in
  let b = { Twope.kept = []; offloaded = tasks } in
  (* dependent PE charges only for the 30% it hosts *)
  check_float 1e-9 "dependent scales" (0.5 *. 10. *. 0.3)
    (cost_exn dependent b)

let test_cost_capacity () =
  let tasks = tasks_of [ (0.5, 600); (0.3, 600) ] in
  let a = { Twope.kept = []; offloaded = tasks } in
  check_bool "over capacity" true (Result.is_error (Twope.cost independent a))

let test_validate_partition () =
  let tasks = tasks_of [ (0.5, 100); (0.3, 100) ] in
  let ok = { Twope.kept = [ List.hd tasks ]; offloaded = List.tl tasks } in
  check_bool "partition ok" true (Twope.validate independent tasks ok = Ok ());
  let bad = { Twope.kept = tasks; offloaded = tasks } in
  check_bool "duplication caught" true
    (Result.is_error (Twope.validate independent tasks bad))

(* ------------------------------------------------------------------ *)
(* algorithms *)

let gen_tasks seed n total_alt inverse =
  let rng = Rt_prelude.Rng.create ~seed in
  if inverse then Twope.gen_inverse rng ~n ~total_alt
  else Twope.gen_proportional rng ~n ~total_alt

let prop_algorithms_return_partitions =
  qtest "every algorithm returns a partition of the task set"
    QCheck2.Gen.(
      triple (int_range 1 1000) (int_range 1 12) (float_range 0.5 2.5))
    (fun (seed, n, total_alt) ->
      let tasks = gen_tasks seed n total_alt (seed mod 2 = 0) in
      List.for_all
        (fun (_, alg) ->
          List.for_all
            (fun sys ->
              let a = alg sys tasks in
              let ids xs =
                List.sort compare (List.map (fun t -> t.Twope.id) xs)
              in
              ids (a.Twope.kept @ a.Twope.offloaded)
              = ids tasks
              && Twope.cost sys a <> Error "Twope.cost: non-DVS PE over capacity")
            [ independent; dependent ])
        Twope.named)

let prop_dp_optimal_independent =
  qtest ~count:50 "DP matches the exhaustive optimum (independent PE)"
    QCheck2.Gen.(pair (int_range 1 1000) (float_range 0.8 2.4))
    (fun (seed, total_alt) ->
      let tasks = gen_tasks seed 9 total_alt (seed mod 2 = 0) in
      let opt = cost_exn independent (Twope.exhaustive independent tasks) in
      let dp = cost_exn independent (Twope.dp independent tasks) in
      Fc.approx_eq ~eps:1e-9 dp opt)

let prop_e_greedy_never_beats_optimum_and_is_feasible =
  qtest ~count:50 "e-greedy: feasible and at least the optimum"
    QCheck2.Gen.(pair (int_range 1 1000) (float_range 0.8 2.4))
    (fun (seed, total_alt) ->
      let tasks = gen_tasks seed 9 total_alt (seed mod 2 = 0) in
      let opt = cost_exn independent (Twope.exhaustive independent tasks) in
      match Twope.cost independent (Twope.e_greedy independent tasks) with
      | Error _ -> false
      | Ok c -> c >= opt -. 1e-9)

let prop_s_greedy_never_worse_than_all_kept =
  qtest ~count:60 "s-greedy never loses to the do-nothing assignment"
    QCheck2.Gen.(pair (int_range 1 1000) (float_range 0.5 2.4))
    (fun (seed, total_alt) ->
      let tasks = gen_tasks seed 10 total_alt (seed mod 2 = 0) in
      let all_kept = { Twope.kept = tasks; offloaded = [] } in
      let base = cost_exn dependent all_kept in
      let s = cost_exn dependent (Twope.s_greedy dependent tasks) in
      Fc.leq ~eps:1e-9 s base)

let test_e_greedy_offloads_everything_when_it_fits () =
  let tasks = tasks_of [ (0.5, 300); (0.4, 300); (0.2, 300) ] in
  let a = Twope.e_greedy independent tasks in
  check_int "all offloaded" 3 (List.length a.Twope.offloaded)

let test_greedy_order () =
  (* under the inverse coupling, the big DVS task is the cheap offload:
     greedy must pick it first when capacity only fits one *)
  let tasks = tasks_of [ (0.8, 600); (0.1, 550) ] in
  let a = Twope.greedy independent tasks in
  (match a.Twope.offloaded with
  | [ t ] -> check_int "offloads the dense task" 0 t.Twope.id
  | _ -> Alcotest.fail "expected exactly one offload");
  check_int "keeps the other" 1 (List.length a.Twope.kept)

let test_s_greedy_declines_bad_trades () =
  (* hosting on the dependent PE costs more than the DVS saving: keep *)
  let expensive_alt =
    match
      Twope.system ~dvs ~alt_power:1e4 ~alt_kind:Twope.Workload_dependent
        ~horizon:10.
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  let tasks = tasks_of [ (0.2, 500) ] in
  let a = Twope.s_greedy expensive_alt tasks in
  check_int "nothing offloaded" 0 (List.length a.Twope.offloaded)

let test_generators () =
  let rng = Rt_prelude.Rng.create ~seed:5 in
  let ts = Twope.gen_proportional rng ~n:10 ~total_alt:1.6 in
  check_int "count" 10 (List.length ts);
  let total = List.fold_left (fun s t -> s + t.Twope.alt_permille) 0 ts in
  check_bool "total alt near target" true (abs (total - 1600) < 50);
  (* inverse coupling: larger dvs weight ⇒ smaller alt share, statistically;
     check the extremes *)
  let rng2 = Rt_prelude.Rng.create ~seed:6 in
  let inv = Twope.gen_inverse rng2 ~n:12 ~total_alt:1.6 in
  let biggest =
    List.fold_left
      (fun a t -> if t.Twope.dvs_weight > a.Twope.dvs_weight then t else a)
      (List.hd inv) inv
  in
  let smallest =
    List.fold_left
      (fun a t -> if t.Twope.dvs_weight < a.Twope.dvs_weight then t else a)
      (List.hd inv) inv
  in
  check_bool "inverse coupling direction" true
    (biggest.Twope.alt_permille <= smallest.Twope.alt_permille)

let () =
  Alcotest.run "rt_twope"
    [
      ( "model",
        [
          Alcotest.test_case "task validation" `Quick test_task_validation;
          Alcotest.test_case "independent cost" `Quick test_cost_independent;
          Alcotest.test_case "dependent cost scales" `Quick
            test_cost_dependent_scales;
          Alcotest.test_case "capacity enforced" `Quick test_cost_capacity;
          Alcotest.test_case "validate partition" `Quick test_validate_partition;
        ] );
      ( "algorithms",
        [
          prop_algorithms_return_partitions;
          prop_dp_optimal_independent;
          prop_e_greedy_never_beats_optimum_and_is_feasible;
          prop_s_greedy_never_worse_than_all_kept;
          Alcotest.test_case "e-greedy offloads all when it fits" `Quick
            test_e_greedy_offloads_everything_when_it_fits;
          Alcotest.test_case "greedy density order" `Quick test_greedy_order;
          Alcotest.test_case "s-greedy declines bad trades" `Quick
            test_s_greedy_declines_bad_trades;
          Alcotest.test_case "generators" `Quick test_generators;
        ] );
    ]
