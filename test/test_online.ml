(* Tests for rt_online: job streams and the online admission controller. *)

open Rt_online
module Fc = Rt_prelude.Float_cmp

let check_float eps = Alcotest.(check (float eps))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let job ~id ~arrival ~cycles ~deadline ~penalty =
  Job.make ~id ~arrival ~cycles ~deadline ~penalty

let simulate_exn ~policy jobs =
  match Admission.simulate ~proc ~policy jobs with
  | Ok o -> o
  | Error e -> Alcotest.failf "simulate: %s" (Admission.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Job *)

let test_job_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s should be rejected" name
  in
  expect_invalid "deadline before arrival" (fun () ->
      job ~id:0 ~arrival:5. ~cycles:1. ~deadline:4. ~penalty:0.);
  expect_invalid "zero cycles" (fun () ->
      job ~id:0 ~arrival:0. ~cycles:0. ~deadline:1. ~penalty:0.);
  expect_invalid "negative penalty" (fun () ->
      job ~id:0 ~arrival:0. ~cycles:1. ~deadline:1. ~penalty:(-1.))

let test_stream_properties () =
  let rng = Rt_prelude.Rng.create ~seed:3 in
  let jobs =
    Job.stream rng ~n:100 ~rate:0.01 ~s_max:1. ~mean_cycles:30. ~slack_lo:2.
      ~slack_hi:6. ~penalty_factor:1.5
  in
  check_int "count" 100 (List.length jobs);
  let sorted = Job.by_arrival jobs in
  check_bool "already time-ordered" true (sorted = jobs);
  check_bool "deadlines leave schedulable laxity" true
    (List.for_all
       (fun (j : Job.t) -> Job.laxity_speed j <= 1. /. 2. +. 1e-9)
       jobs)

let test_stream_seq_matches_stream () =
  (* the lazy form forced to completion is the list form, element for
     element, for the same seed *)
  let materialize seed =
    let rng = Rt_prelude.Rng.create ~seed in
    Job.stream rng ~n:60 ~rate:0.05 ~s_max:1. ~mean_cycles:20. ~slack_lo:1.5
      ~slack_hi:5. ~penalty_factor:1.2
  in
  let lazily seed =
    let rng = Rt_prelude.Rng.create ~seed in
    Job.stream_seq rng ~limit:60 ~rate:0.05 ~s_max:1. ~mean_cycles:20.
      ~slack_lo:1.5 ~slack_hi:5. ~penalty_factor:1.2 ()
    |> List.of_seq
  in
  check_bool "stream_seq = stream" true (materialize 9 = lazily 9);
  (* unlimited form: pulling a prefix matches too, without forcing more *)
  let rng = Rt_prelude.Rng.create ~seed:9 in
  let prefix =
    Job.stream_seq rng ~rate:0.05 ~s_max:1. ~mean_cycles:20. ~slack_lo:1.5
      ~slack_hi:5. ~penalty_factor:1.2 ()
    |> Seq.take 10 |> List.of_seq
  in
  check_bool "unbounded prefix matches" true
    (prefix = List.filteri (fun i _ -> i < 10) (materialize 9))

(* ------------------------------------------------------------------ *)
(* Admission: hand-built scenarios *)

let test_single_job_runs_at_critical () =
  (* one tiny job with a loose deadline: runs at the critical speed *)
  let j = job ~id:0 ~arrival:0. ~cycles:10. ~deadline:1000. ~penalty:1e6 in
  let o = simulate_exn ~policy:Admission.Admit_all [ j ] in
  check_int "admitted" 1 (List.length o.Admission.admitted);
  let s_crit = Rt_power.Processor.critical_speed proc in
  let expected =
    10. /. s_crit
    *. Rt_power.Power_model.power proc.Rt_power.Processor.model s_crit
  in
  check_float 1e-6 "energy at critical speed" expected o.Admission.energy;
  check_float 1e-6 "makespan" (10. /. s_crit) o.Admission.makespan

let test_forced_rejection () =
  (* two jobs that cannot both fit even at top speed *)
  let j0 = job ~id:0 ~arrival:0. ~cycles:90. ~deadline:100. ~penalty:1. in
  let j1 = job ~id:1 ~arrival:0. ~cycles:90. ~deadline:100. ~penalty:1. in
  let o = simulate_exn ~policy:Admission.Admit_all [ j0; j1 ] in
  check_int "one forced out" 1 o.Admission.forced_rejections;
  check_int "one admitted" 1 (List.length o.Admission.admitted);
  check_float 1e-9 "penalty paid" 1. o.Admission.penalty

let test_profitable_declines_cheap_jobs () =
  (* tight deadline -> runs near top speed; penalty below that energy *)
  let j = job ~id:0 ~arrival:0. ~cycles:100. ~deadline:101. ~penalty:0.5 in
  let o = simulate_exn ~policy:Admission.Profitable [ j ] in
  check_int "declined" 1 (List.length o.Admission.rejected);
  check_int "not forced" 0 o.Admission.forced_rejections;
  (* the same job with a huge penalty is taken *)
  let j2 = job ~id:0 ~arrival:0. ~cycles:100. ~deadline:101. ~penalty:1e6 in
  let o2 = simulate_exn ~policy:Admission.Profitable [ j2 ] in
  check_int "taken when worth it" 1 (List.length o2.Admission.admitted)

let test_density_threshold () =
  let j_cheap = job ~id:0 ~arrival:0. ~cycles:10. ~deadline:100. ~penalty:1. in
  let j_dear = job ~id:1 ~arrival:0. ~cycles:10. ~deadline:100. ~penalty:50. in
  let o =
    simulate_exn ~policy:(Admission.Density_threshold 1.) [ j_cheap; j_dear ]
  in
  Alcotest.(check (list int)) "keeps the valuable job" [ 1 ] o.Admission.admitted;
  Alcotest.(check (list int)) "drops the cheap one" [ 0 ] o.Admission.rejected

let test_preemption_by_tighter_deadline () =
  (* a long loose job is preempted by a later tight one; both meet their
     deadlines thanks to the density speed-up *)
  let j0 = job ~id:0 ~arrival:0. ~cycles:50. ~deadline:200. ~penalty:1e6 in
  let j1 = job ~id:1 ~arrival:10. ~cycles:30. ~deadline:50. ~penalty:1e6 in
  let o = simulate_exn ~policy:Admission.Admit_all [ j0; j1 ] in
  check_int "both admitted" 2 (List.length o.Admission.admitted);
  check_bool "work done before the last deadline" true
    (Fc.leq ~eps:1e-6 o.Admission.makespan 200.)

let test_duplicate_ids_rejected () =
  let j = job ~id:0 ~arrival:0. ~cycles:1. ~deadline:10. ~penalty:0. in
  check_bool "duplicates" true
    (Result.is_error (Admission.simulate ~proc ~policy:Admission.Admit_all [ j; j ]))

let test_levels_unsupported () =
  let lv = Rt_power.Processor.xscale_levels ~dormancy:Rt_power.Processor.Dormant_disable in
  let j = job ~id:0 ~arrival:0. ~cycles:1. ~deadline:10. ~penalty:0. in
  check_bool "discrete domain refused" true
    (Result.is_error (Admission.simulate ~proc:lv ~policy:Admission.Admit_all [ j ]))

(* ------------------------------------------------------------------ *)
(* properties over random streams *)

let random_stream seed =
  let rng = Rt_prelude.Rng.create ~seed in
  let rate = Rt_prelude.Rng.float rng ~lo:0.005 ~hi:0.05 in
  Job.stream rng ~n:60 ~rate ~s_max:1. ~mean_cycles:25. ~slack_lo:1.5
    ~slack_hi:8. ~penalty_factor:1.2

let policies =
  [
    Admission.Admit_all;
    Admission.Profitable;
    Admission.Density_threshold 0.5;
  ]

let prop_simulation_sound =
  qtest "every policy: no misses, jobs partitioned, cost adds up"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let jobs = random_stream seed in
      List.for_all
        (fun policy ->
          match Admission.simulate ~proc ~policy jobs with
          | Error _ -> false
          | Ok o ->
              List.length o.Admission.admitted
              + List.length o.Admission.rejected
              = List.length jobs
              && Fc.approx_eq ~eps:1e-9 o.Admission.total
                   (o.Admission.energy +. o.Admission.penalty))
        policies)

let prop_above_lower_bound =
  qtest "every policy's cost is at least the per-job lower bound"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let jobs = random_stream seed in
      let lb = Admission.lower_bound ~proc jobs in
      List.for_all
        (fun policy ->
          match Admission.simulate ~proc ~policy jobs with
          | Error _ -> false
          | Ok o -> o.Admission.total >= lb -. 1e-6)
        policies)

let prop_admit_all_never_rejects_feasible =
  qtest "Admit_all only rejects when the admission test fails"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let jobs = random_stream seed in
      match Admission.simulate ~proc ~policy:Admission.Admit_all jobs with
      | Error _ -> false
      | Ok o -> List.length o.Admission.rejected = o.Admission.forced_rejections)

(* ------------------------------------------------------------------ *)
(* multiprocessor admission *)

let prop_mp_m1_equals_uniprocessor =
  qtest ~count:40 "simulate_mp with m=1 coincides with simulate"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let jobs = random_stream seed in
      List.for_all
        (fun policy ->
          match
            ( Admission.simulate ~proc ~policy jobs,
              Admission.simulate_mp ~proc ~m:1 ~policy jobs )
          with
          | Ok a, Ok b ->
              a.Admission.admitted = b.Admission.admitted
              && Fc.approx_eq ~eps:1e-9 a.Admission.total b.Admission.total
          | _ -> false)
        policies)

let prop_mp_more_processors_admit_more =
  qtest ~count:40 "more processors never force more rejections (admit-all)"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Rt_prelude.Rng.create ~seed in
      (* heavy stream so forced rejections actually occur at m=1 *)
      let jobs =
        Job.stream rng ~n:60 ~rate:0.08 ~s_max:1. ~mean_cycles:25.
          ~slack_lo:1.2 ~slack_hi:4. ~penalty_factor:1.
      in
      let forced m =
        match Admission.simulate_mp ~proc ~m ~policy:Admission.Admit_all jobs with
        | Ok o -> Some o.Admission.forced_rejections
        | Error _ -> None
      in
      match (forced 1, forced 2, forced 4) with
      | Some f1, Some f2, Some f4 -> f2 <= f1 && f4 <= f2
      | _ -> false)

let test_mp_spreads_load () =
  (* two simultaneous tight jobs need two processors *)
  let j0 = job ~id:0 ~arrival:0. ~cycles:90. ~deadline:100. ~penalty:10. in
  let j1 = job ~id:1 ~arrival:0. ~cycles:90. ~deadline:100. ~penalty:10. in
  (match Admission.simulate_mp ~proc ~m:2 ~policy:Admission.Admit_all [ j0; j1 ] with
  | Error e -> Alcotest.fail (Admission.error_to_string e)
  | Ok o ->
      check_int "both admitted on two processors" 2
        (List.length o.Admission.admitted));
  match Admission.simulate ~proc ~policy:Admission.Admit_all [ j0; j1 ] with
  | Error e -> Alcotest.fail (Admission.error_to_string e)
  | Ok o -> check_int "one forced out on one processor" 1 o.Admission.forced_rejections

(* ------------------------------------------------------------------ *)
(* YDS *)

let test_yds_single_job () =
  let j = job ~id:0 ~arrival:10. ~cycles:40. ~deadline:90. ~penalty:0. in
  (match Yds.blocks [ j ] with
  | [ b ] ->
      check_float 1e-9 "intensity = laxity speed" 0.5 b.Yds.intensity;
      check_float 1e-9 "length" 80. b.Yds.length;
      check_float 1e-9 "work" 40. b.Yds.work
  | _ -> Alcotest.fail "one block expected");
  check_float 1e-9 "peak" 0.5 (Yds.peak_intensity [ j ])

let test_yds_textbook () =
  (* two nested jobs: the tight inner one defines the critical interval *)
  let outer = job ~id:0 ~arrival:0. ~cycles:20. ~deadline:100. ~penalty:0. in
  let inner = job ~id:1 ~arrival:40. ~cycles:30. ~deadline:60. ~penalty:0. in
  match Yds.blocks [ outer; inner ] with
  | [ b1; b2 ] ->
      check_float 1e-9 "critical intensity" 1.5 b1.Yds.intensity;
      check_float 1e-9 "critical length" 20. b1.Yds.length;
      (* after excision the outer job has 80 time units for 20 cycles *)
      check_float 1e-9 "second intensity" 0.25 b2.Yds.intensity;
      check_bool "non-increasing" true (b1.Yds.intensity >= b2.Yds.intensity)
  | bs -> Alcotest.failf "expected 2 blocks, got %d" (List.length bs)

let prop_yds_work_conserved =
  qtest "YDS blocks conserve total work, intensities non-increasing"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let jobs = random_stream seed in
      let bs = Yds.blocks jobs in
      let total_work =
        List.fold_left (fun acc b -> acc +. b.Yds.work) 0. bs
      in
      let total_cycles =
        List.fold_left (fun acc (j : Job.t) -> acc +. j.Job.cycles) 0. jobs
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) ->
            Fc.geq ~eps:1e-9 a.Yds.intensity b.Yds.intensity
            && non_increasing rest
        | _ -> true
      in
      Fc.approx_eq ~eps:1e-6 total_work total_cycles && non_increasing bs)

(* Only one direction holds: full admission implies an offline-feasible
   set. The converse fails because the online executor runs at the current
   density — it procrastinates relative to clairvoyant YDS, which clears
   work ahead of bursts, so an offline-feasible stream can still force
   online rejections. *)
let prop_admission_implies_yds_feasible =
  qtest ~count:40 "admit-all taking everything implies YDS peak <= s_max"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let jobs = random_stream seed in
      match Admission.simulate ~proc ~policy:Admission.Admit_all jobs with
      | Error _ -> false
      | Ok o ->
          o.Admission.rejected <> []
          || Fc.leq ~eps:1e-6 (Yds.peak_intensity jobs) 1.)

let prop_yds_no_worse_than_online =
  qtest ~count:40 "when everything is admitted, YDS energy <= online energy"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Rt_prelude.Rng.create ~seed in
      (* light load so that admit-all usually takes the whole stream *)
      let jobs =
        Job.stream rng ~n:30 ~rate:0.01 ~s_max:1. ~mean_cycles:20.
          ~slack_lo:2. ~slack_hi:8. ~penalty_factor:1.
      in
      match Admission.simulate ~proc ~policy:Admission.Admit_all jobs with
      | Error _ -> false
      | Ok o ->
          if o.Admission.rejected <> [] then true (* overloaded sample *)
          else
            (match Yds.energy ~proc jobs with
            | Error _ -> false
            | Ok e -> e <= o.Admission.energy +. 1e-6))

let test_yds_energy_critical_clamp () =
  (* a single slack job runs at the critical speed, sleeping the rest *)
  let j = job ~id:0 ~arrival:0. ~cycles:10. ~deadline:1000. ~penalty:0. in
  match Yds.energy ~proc [ j ] with
  | Error e -> Alcotest.fail e
  | Ok e ->
      let s_crit = Rt_power.Processor.critical_speed proc in
      let expected =
        10. /. s_crit
        *. Rt_power.Power_model.power proc.Rt_power.Processor.model s_crit
      in
      check_float 1e-6 "clamped energy" expected e

let test_yds_infeasible () =
  let j = job ~id:0 ~arrival:0. ~cycles:100. ~deadline:50. ~penalty:0. in
  check_bool "over s_max" true (Result.is_error (Yds.energy ~proc [ j ]))

let () =
  Alcotest.run "rt_online"
    [
      ( "job",
        [
          Alcotest.test_case "validation" `Quick test_job_validation;
          Alcotest.test_case "stream" `Quick test_stream_properties;
          Alcotest.test_case "stream_seq lazy form" `Quick
            test_stream_seq_matches_stream;
        ] );
      ( "admission",
        [
          Alcotest.test_case "single job at critical speed" `Quick
            test_single_job_runs_at_critical;
          Alcotest.test_case "forced rejection" `Quick test_forced_rejection;
          Alcotest.test_case "profitable declines cheap jobs" `Quick
            test_profitable_declines_cheap_jobs;
          Alcotest.test_case "density threshold" `Quick test_density_threshold;
          Alcotest.test_case "preemption" `Quick
            test_preemption_by_tighter_deadline;
          Alcotest.test_case "duplicate ids" `Quick test_duplicate_ids_rejected;
          Alcotest.test_case "levels unsupported" `Quick test_levels_unsupported;
        ] );
      ( "properties",
        [
          prop_simulation_sound;
          prop_above_lower_bound;
          prop_admit_all_never_rejects_feasible;
        ] );
      ( "multiprocessor",
        [
          prop_mp_m1_equals_uniprocessor;
          prop_mp_more_processors_admit_more;
          Alcotest.test_case "spreads load" `Quick test_mp_spreads_load;
        ] );
      ( "yds",
        [
          Alcotest.test_case "single job" `Quick test_yds_single_job;
          Alcotest.test_case "textbook nested jobs" `Quick test_yds_textbook;
          prop_yds_work_conserved;
          prop_admission_implies_yds_feasible;
          prop_yds_no_worse_than_online;
          Alcotest.test_case "critical clamp" `Quick
            test_yds_energy_critical_clamp;
          Alcotest.test_case "infeasible detection" `Quick test_yds_infeasible;
        ] );
    ]
