(* Streaming-service benchmark: drives rt_serve end to end and emits
   BENCH_online.json — sustained admission throughput (target: at least
   one million synthetic jobs per minute), decision-latency tails, the
   shed fraction under forced backpressure, and the empirical
   competitive ratio against the clairvoyant lower bound and the YDS
   offline-optimal energy.

     dune exec bench/serve_bench.exe                  # 200k-job stream
     RT_BENCH_FULL=1 dune exec bench/serve_bench.exe  # 1M-job stream *)

let out_file = "BENCH_online.json"

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let mean_cycles = 25.

let source ~seed ~n =
  Rt_serve.Source.synthetic ~seed ~limit:n ~rate:(1.4 /. mean_cycles)
    ~s_max:1. ~mean_cycles ~slack_lo:1.2 ~slack_hi:4. ~penalty_factor:1.3 ()

let run_or_die ~what = function
  | Ok r -> r
  | Error e ->
      Printf.eprintf "serve_bench: %s failed: %s\n" what
        (Rt_online.Admission.error_to_string e);
      exit 1

type row = {
  case : string;
  jobs : int;
  wall_s : float;
  jobs_per_min : float;
  p99_latency_s : float;
  max_latency_s : float;
  shed_fraction : float;
  ratio_lower_bound : float;
  ratio_yds : float option;
      (* None when the YDS bound was not computed for this case; the JSON
         carries an explicit null — a 0.0 sentinel would read as "the
         online run used no energy at all" and poison ratio statistics *)
}

let json_of_row r =
  Printf.sprintf
    "  {\"case\": %S, \"jobs\": %d, \"wall_s\": %.6f, \"jobs_per_min\": \
     %.1f, \"p99_latency_s\": %.9f, \"max_latency_s\": %.9f, \
     \"shed_fraction\": %.6f, \"ratio_lower_bound\": %.6f, \"ratio_yds\": \
     %s}"
    r.case r.jobs r.wall_s r.jobs_per_min r.p99_latency_s r.max_latency_s
    r.shed_fraction r.ratio_lower_bound
    (match r.ratio_yds with
    | Some x -> Printf.sprintf "%.6f" x
    | None -> "null")

let row_of_report ~case ~n ~wall (r : Rt_serve.Serve.report) =
  {
    case;
    jobs = n;
    wall_s = wall;
    jobs_per_min = 60. *. float_of_int n /. Float.max 1e-9 wall;
    p99_latency_s = r.p99_latency;
    max_latency_s = r.max_latency;
    shed_fraction = float_of_int r.shed /. Float.max 1. (float_of_int r.seen);
    ratio_lower_bound =
      r.outcome.Rt_online.Admission.total /. Float.max 1e-9 r.lower_bound;
    ratio_yds =
      Option.map
        (fun yds -> r.outcome.Rt_online.Admission.energy /. Float.max 1e-9 yds)
        r.yds_energy;
  }

let () =
  let full = Sys.getenv_opt "RT_BENCH_FULL" <> None in
  let n = if full then 1_000_000 else 200_000 in
  (* 1: sustained throughput of the transparent service (the
     byte-identity fast path), policy = profitable *)
  let config =
    { Rt_serve.Serve.default_config with policy = Rt_online.Admission.Profitable }
  in
  let t0 = Rt_prelude.Clock.now () in
  let r1 =
    run_or_die ~what:"throughput"
      (Rt_serve.Serve.run ~proc ~config (source ~seed:42 ~n))
  in
  let wall1 = Rt_prelude.Clock.elapsed ~since:t0 in
  let row1 = row_of_report ~case:"throughput" ~n ~wall:wall1 r1 in
  (* 2: sharded throughput across a domain pool (RT_JOBS workers) *)
  let shards = 4 in
  let jobs_list =
    let src = source ~seed:43 ~n in
    let rec drain acc =
      match Rt_serve.Source.next src with
      | Ok (Some j) -> drain (j :: acc)
      | Ok None -> List.rev acc
      | Error msg ->
          Printf.eprintf "serve_bench: source failed: %s\n" msg;
          exit 1
    in
    drain []
  in
  let domains = Rt_parallel.Pool.default_domains () in
  let t0 = Rt_prelude.Clock.now () in
  let r2 =
    run_or_die ~what:"sharded"
      (if domains > 1 then
         Rt_parallel.Pool.with_pool ~domains (fun pool ->
             Rt_serve.Serve.run_sharded ~pool ~shards ~proc ~config jobs_list)
       else Rt_serve.Serve.run_sharded ~shards ~proc ~config jobs_list)
  in
  let wall2 = Rt_prelude.Clock.elapsed ~since:t0 in
  let row2 = row_of_report ~case:"sharded-x4" ~n ~wall:wall2 r2 in
  (* 3: forced backpressure — a decision server slower than the arrival
     rate behind a bounded queue, so ingress shedding must engage *)
  let n3 = n / 10 in
  let config3 =
    {
      config with
      Rt_serve.Serve.queue_capacity = Some 256;
      decision_rate = Some (0.75 *. (1.4 /. mean_cycles));
      overload = Some { Rt_serve.Serve.window = 200.; enter_above = 1.; exit_below = 0.75 };
    }
  in
  let t0 = Rt_prelude.Clock.now () in
  let r3 =
    run_or_die ~what:"backpressure"
      (Rt_serve.Serve.run ~proc ~config:config3 (source ~seed:44 ~n:n3))
  in
  let wall3 = Rt_prelude.Clock.elapsed ~since:t0 in
  let row3 = row_of_report ~case:"backpressure" ~n:n3 ~wall:wall3 r3 in
  (* 4: competitive ratio on a small stream where YDS is affordable *)
  let n4 = 1_000 in
  let config4 = { config with Rt_serve.Serve.yds_bound = true } in
  let t0 = Rt_prelude.Clock.now () in
  let r4 =
    run_or_die ~what:"competitive"
      (Rt_serve.Serve.run ~proc ~config:config4 (source ~seed:45 ~n:n4))
  in
  let wall4 = Rt_prelude.Clock.elapsed ~since:t0 in
  let row4 = row_of_report ~case:"competitive" ~n:n4 ~wall:wall4 r4 in
  let rows = [ row1; row2; row3; row4 ] in
  let oc = open_out out_file in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.map json_of_row rows));
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "wrote %s (%d records)\n" out_file (List.length rows);
  List.iter
    (fun r ->
      Printf.printf
        "  %-12s %8d jobs  %7.2fs  %12.0f jobs/min  p99 %.2e s  shed %5.3f  \
         vs-lb %.3f%s\n"
        r.case r.jobs r.wall_s r.jobs_per_min r.p99_latency_s r.shed_fraction
        r.ratio_lower_bound
        (match r.ratio_yds with
        | Some x -> Printf.sprintf "  vs-yds %.3f" x
        | None -> ""))
    rows;
  if Rt_prelude.Float_cmp.exact_lt row1.jobs_per_min 1_000_000. then begin
    Printf.printf "throughput below 1M jobs/min target\n";
    exit 1
  end
