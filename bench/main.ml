(* Benchmark harness.

   Two sections:

   1. The evaluation tables — one per experiment in the EXPERIMENTS.md
      index (E1..E16), regenerated through the same Rt_expkit registry the
      [experiments] binary uses. Reduced replication counts by default so
      the whole run stays in CI territory; set RT_BENCH_FULL=1 for the
      full-fidelity tables recorded in EXPERIMENTS.md.

   2. Bechamel timing benches — one Test.make per experiment covering the
      workhorse kernel behind that table, plus a size-scaling group for
      the heuristics themselves. *)

open Bechamel
open Toolkit

(* ---------------------------------------------------------------- *)
(* Section 1: experiment tables *)

let print_tables () =
  let quick = Sys.getenv_opt "RT_BENCH_FULL" = None in
  if quick then
    print_endline
      "(tables at reduced replication count; RT_BENCH_FULL=1 for the full \
       EXPERIMENTS.md fidelity)";
  List.iter (Rt_expkit.Registry.print ~quick) Rt_expkit.Registry.all

(* ---------------------------------------------------------------- *)
(* Section 2: timing kernels *)

let proc =
  Rt_power.Processor.xscale
    ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 0.; e_sw = 0. })

let instance ~seed ~n ~m ~load =
  Rt_expkit.Instances.frame_instance ~proc ~seed ~n ~m ~load ()

let kernel_tests =
  let p_small = instance ~seed:1 ~n:8 ~m:2 ~load:1.4 in
  let p_mid = instance ~seed:2 ~n:40 ~m:8 ~load:1.5 in
  let p_big = instance ~seed:3 ~n:120 ~m:16 ~load:1.5 in
  let levels =
    Rt_power.Processor.xscale_levels ~dormancy:Rt_power.Processor.Dormant_disable
  in
  let hetero_items =
    let rng = Rt_prelude.Rng.create ~seed:4 in
    Rt_task.Gen.items rng ~n:12 ~weight_lo:0.02 ~weight_hi:0.07
    |> Rt_task.Gen.heterogeneous_power_factors rng ~lo:0.5 ~hi:3.
  in
  let periodic_part =
    let rng = Rt_prelude.Rng.create ~seed:5 in
    let tasks =
      Rt_task.Gen.periodic_tasks rng ~n:16 ~total_util:1.2
        ~periods:Rt_task.Gen.default_periods
    in
    Rt_partition.Heuristics.ltf ~m:8 (Rt_task.Taskset.items_of_periodics tasks)
  in
  let e8_proc =
    Rt_power.Processor.xscale
      ~dormancy:(Rt_power.Processor.Dormant_enable { t_sw = 5.; e_sw = 4. })
  in
  let jobs =
    let rng = Rt_prelude.Rng.create ~seed:6 in
    Rt_online.Job.stream rng ~n:40 ~rate:0.02 ~s_max:1. ~mean_cycles:25.
      ~slack_lo:1.5 ~slack_hi:6. ~penalty_factor:1.2
  in
  let mig_items =
    let rng = Rt_prelude.Rng.create ~seed:7 in
    Rt_task.Gen.items rng ~n:20 ~weight_lo:0.05 ~weight_hi:0.4
  in
  let lp_problem =
    {
      Rt_lp.Simplex.minimize = [| -3.; -5.; 1.; 0.5 |];
      constraints =
        [
          ([| 1.; 0.; 2.; 0. |], Rt_lp.Simplex.Le, 4.);
          ([| 0.; 2.; 0.; 1. |], Rt_lp.Simplex.Le, 12.);
          ([| 3.; 2.; 1.; 1. |], Rt_lp.Simplex.Le, 18.);
          ([| 1.; 1.; 1.; 1. |], Rt_lp.Simplex.Ge, 1.);
        ];
    }
  in
  let qos_tasks =
    List.map
      (Rt_core.Qos.graceful ~steps:4 ~curve:2.)
      p_mid.Rt_core.Problem.items
  in
  let qos_problem =
    match
      Rt_core.Problem.make ~proc ~m:8 ~horizon:1000. []
    with
    | Ok p -> p
    | Error e -> invalid_arg e
  in
  [
    Test.make ~name:"e1.kernel: branch&bound n=8 m=2"
      (Staged.stage (fun () -> Rt_core.Exact.branch_and_bound p_small));
    Test.make ~name:"e2.kernel: lower_bound n=120 m=16"
      (Staged.stage (fun () -> Rt_core.Bounds.lower_bound p_big));
    Test.make ~name:"e3.kernel: ltf-reject + local search n=40 m=8"
      (Staged.stage (fun () ->
           Rt_core.Local_search.with_local_search Rt_core.Greedy.ltf_reject
             p_mid));
    Test.make ~name:"e4.kernel: density_reject n=40 m=8"
      (Staged.stage (fun () -> Rt_core.Greedy.density_reject p_mid));
    Test.make ~name:"e5.kernel: two-level split plan (levels domain)"
      (Staged.stage (fun () -> Rt_speed.Energy_rate.optimal levels ~u:0.55));
    Test.make ~name:"e6.kernel: numeric critical speed (linear term)"
      (Staged.stage
         (let m =
            Rt_power.Power_model.make ~p_ind:0.1 ~linear:0.2 ~coeff:1.52
              ~alpha:3. ()
          in
          fun () -> Rt_power.Power_model.critical_speed m ~s_max:1.));
    Test.make ~name:"e7.kernel: hetero KKT speeds (12 tasks)"
      (Staged.stage (fun () ->
           Rt_partition.Hetero.processor_speeds
             (Rt_power.Processor.xscale
                ~dormancy:Rt_power.Processor.Dormant_disable)
             ~horizon:1000. hetero_items));
    Test.make ~name:"e13.kernel: online admission, 40-job stream"
      (Staged.stage (fun () ->
           Rt_online.Admission.simulate ~proc
             ~policy:Rt_online.Admission.Profitable jobs));
    Test.make ~name:"e13.kernel: YDS decomposition, 40 jobs"
      (Staged.stage (fun () -> Rt_online.Yds.blocks jobs));
    Test.make ~name:"e11.kernel: two-phase simplex, 4 vars x 4 rows"
      (Staged.stage (fun () -> Rt_lp.Simplex.solve lp_problem));
    Test.make ~name:"e15.kernel: migratory optimum n=20 m=4"
      (Staged.stage (fun () ->
           Rt_partition.Migration.optimal ~proc:(Rt_power.Processor.cubic ())
             ~m:4 ~frame:1000. mig_items));
    Test.make ~name:"e16.kernel: greedy degradation n=40 m=8"
      (Staged.stage (fun () ->
           Rt_core.Qos.greedy_degrade qos_problem qos_tasks));
    Test.make ~name:"e8.kernel: consolidate + policy energy m=8"
      (Staged.stage (fun () ->
           Rt_expkit.Exp_leakage.policy_energy ~proc:e8_proc ~horizon:2000.
             ~jobs_on:(fun b -> 10 * List.length b)
             { Rt_expkit.Exp_leakage.ff = true; procrastinate = false }
             periodic_part));
  ]

(* Rows are named by the instance size itself ("ltf-reject:n=1000"), not
   by positional index — a positional "ltf-reject:2" silently changes
   meaning whenever the size list changes, which is exactly what the CI
   regression gates key on. Keep [scaling_sizes] and the group title in
   [run_timings] in sync. *)
let scaling_sizes = [ 10; 100; 1_000; 10_000; 100_000 ]

let scaling_tests =
  let problems =
    List.map (fun n -> (n, instance ~seed:(100 + n) ~n ~m:8 ~load:1.5))
      scaling_sizes
  in
  let family ~name alg =
    List.map
      (fun (n, p) ->
        Test.make ~name:(Printf.sprintf "%s:n=%d" name n)
          (Staged.stage (fun () -> alg p)))
      problems
  in
  family ~name:"ltf-reject" Rt_core.Greedy.ltf_reject
  @ family ~name:"marginal" Rt_core.Greedy.marginal_greedy
  @ family ~name:"unsorted" Rt_core.Greedy.unsorted_reject

let run_timings () =
  let tests =
    Test.make_grouped ~name:"rt-reject"
      [
        Test.make_grouped ~name:"kernels" kernel_tests;
        Test.make_grouped ~name:"scaling(n=10..100000)" scaling_tests;
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) () in
  (* minor_allocated rides along: the Gc.minor_words delta per run is the
     allocation axis the hot-path lint (docs/PERF_LINT.md) optimizes *)
  let raw =
    Benchmark.all cfg Instance.[ monotonic_clock; minor_allocated ] tests
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | None -> None
    | Some ols -> (
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> Some x
        | Some [] | None -> None)
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let words = Analyze.all ols Instance.minor_allocated raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) times [] in
  let names = List.sort compare names in
  let rows =
    List.map
      (fun name -> (name, estimate times name, estimate words name))
      names
  in
  let fmt_opt = function
    | Some x -> Printf.sprintf "%.1f" x
    | None -> "n/a"
  in
  let table =
    List.fold_left
      (fun t (name, ns, w) ->
        Rt_prelude.Tablefmt.add_row t [ name; fmt_opt ns; fmt_opt w ])
      (Rt_prelude.Tablefmt.create
         ~aligns:
           [
             Rt_prelude.Tablefmt.Left; Rt_prelude.Tablefmt.Right;
             Rt_prelude.Tablefmt.Right;
           ]
         [ "benchmark"; "ns/run"; "minor words/run" ])
      rows
  in
  print_endline
    "\n== timing (bechamel, monotonic clock, OLS ns/run + minor words/run) ==";
  Rt_prelude.Tablefmt.print table;
  rows

(* ---------------------------------------------------------------- *)
(* Section 3: solver races + persisted trajectory (BENCH_core.json) *)

let out_file = "BENCH_core.json"

(* best-of-[reps] monotonic wall-clock seconds plus the last result *)
let time_wall ~reps f =
  let rec go k best last =
    if k = 0 then (best, last)
    else begin
      let t0 = Rt_prelude.Clock.now () in
      let r = f () in
      go (k - 1) (Float.min best (Rt_prelude.Clock.elapsed ~since:t0)) (Some r)
    end
  in
  match go reps infinity None with
  | best, Some r -> (best, r)
  | _, None -> invalid_arg "time_wall: reps < 1"

type race = {
  race_name : string;
  seq_wall : float;
  seq_cost : float;
  seq_nodes : int;
  par_wall : float;
  par_cost : float;
  par_nodes : int;
  race_domains : int;
  speedup : float;
  steals : int option;
      (* work-steal rows: total successful steals across the pool *)
  completed : bool option;
      (* work-steal rows: both sides ran to completion (neither
         exhausted its budget) — the rows the CI wall-clock and
         cost-equality gates apply to *)
}

(* The portfolio race: plain branch-and-bound from its own all-reject
   seed versus the portfolio, whose heuristic entrants publish their
   costs to the shared incumbent the exact entrant prunes against.
   "Speedup" is time-to-equal-quality — the portfolio must reach a cost
   no worse than the sequential optimum (it does: both complete, and the
   shared bound only prunes strictly worse subtrees). Honest on any
   machine: the gain comes from the collapsed search tree, not from
   core count. *)
let portfolio_race ~pool ~reps ~seed ~n ~m ~load =
  let p = instance ~seed ~n ~m ~load in
  let seq_wall, seq =
    time_wall ~reps (fun () ->
        match Rt_core.Exact.branch_and_bound_budgeted p with
        | Ok b -> b
        | Error e -> invalid_arg e)
  in
  let seq_cost = Rt_expkit.Instances.solution_total p seq.Rt_core.Exact.solution in
  let par_wall, par =
    time_wall ~reps (fun () ->
        match Rt_parallel.Portfolio.run ?pool p with
        | Ok o -> o
        | Error e -> invalid_arg e)
  in
  let bb_nodes =
    List.fold_left
      (fun acc (st : Rt_parallel.Portfolio.stat) ->
        acc + st.Rt_parallel.Portfolio.nodes)
      0 par.Rt_parallel.Portfolio.stats
  in
  {
    race_name = Printf.sprintf "portfolio n=%d m=%d seed=%d" n m seed;
    seq_wall;
    seq_cost;
    seq_nodes = seq.Rt_core.Exact.nodes;
    par_wall;
    par_cost = par.Rt_parallel.Portfolio.cost;
    par_nodes = bb_nodes;
    race_domains = (match pool with None -> 1 | Some pl -> Rt_parallel.Pool.size pl);
    speedup = seq_wall /. Float.max 1e-9 par_wall;
    steals = None;
    completed = None;
  }

(* The work-stealing race: the same exact search dynamically balanced
   over per-domain deques with a shared incumbent. Both sides get the
   same wall-clock budget, so the larger instances record honest
   exhausted-at-budget rows ([completed] false) rather than nothing.
   On a single hardware core the wall-clock speedup is bounded by ~1x
   (the deque and incumbent traffic is pure overhead there); the CI
   wall-clock gate therefore keys on the recorded core count. Steal
   totals land in the JSON so the trajectory tracks balancing activity
   alongside raw time. *)
let work_steal_race ~pool ~reps ~budget ~seed ~n ~m ~load =
  let p = instance ~seed ~n ~m ~load in
  let seq_wall, seq =
    time_wall ~reps (fun () ->
        match Rt_core.Exact.branch_and_bound_budgeted ~time_budget:budget p with
        | Ok b -> b
        | Error e -> invalid_arg e)
  in
  let par_wall, (par, stats) =
    time_wall ~reps (fun () ->
        match Rt_parallel.Par_search.solve_stats ?pool ~time_budget:budget p with
        | Ok r -> r
        | Error e -> invalid_arg e)
  in
  let domains =
    match pool with None -> 1 | Some pl -> Rt_parallel.Pool.size pl
  in
  {
    race_name =
      Printf.sprintf "work-steal bb n=%d m=%d seed=%d d=%d" n m seed domains;
    seq_wall;
    seq_cost = Rt_expkit.Instances.solution_total p seq.Rt_core.Exact.solution;
    seq_nodes = seq.Rt_core.Exact.nodes;
    par_wall;
    par_cost = Rt_expkit.Instances.solution_total p par.Rt_core.Exact.solution;
    par_nodes = par.Rt_core.Exact.nodes;
    race_domains = domains;
    speedup = seq_wall /. Float.max 1e-9 par_wall;
    steals =
      Some (List.fold_left ( + ) 0 stats.Rt_parallel.Par_search.steals);
    completed =
      Some
        ((not seq.Rt_core.Exact.exhausted)
        && not par.Rt_core.Exact.exhausted);
  }

(* The equal-budget race: on instances past the exact frontier (n >= 18)
   the all-reject-seeded sequential search holds an incumbent well above
   the greedy family for seconds, while the portfolio's incumbent drops
   to the best heuristic cost the moment the heuristics finish (and only
   improves from there). Both sides get a wall-clock budget; the
   portfolio's is a quarter of the sequential one. Recorded speedup is
   seq wall over portfolio wall with the cost comparison alongside —
   time-to-better-quality, the portfolio's actual value proposition. *)
let budget_race ~pool ~seed ~n ~m ~load ~budget =
  let p = instance ~seed ~n ~m ~load in
  let seq_wall, seq =
    time_wall ~reps:1 (fun () ->
        match Rt_core.Exact.branch_and_bound_budgeted ~time_budget:budget p with
        | Ok b -> b
        | Error e -> invalid_arg e)
  in
  let par_wall, par =
    time_wall ~reps:1 (fun () ->
        match
          Rt_parallel.Portfolio.run ?pool ~time_budget:(budget /. 4.) p
        with
        | Ok o -> o
        | Error e -> invalid_arg e)
  in
  let bb_nodes =
    List.fold_left
      (fun acc (st : Rt_parallel.Portfolio.stat) ->
        acc + st.Rt_parallel.Portfolio.nodes)
      0 par.Rt_parallel.Portfolio.stats
  in
  {
    race_name =
      Printf.sprintf "portfolio-budget n=%d m=%d seed=%d tb=%.1fs" n m seed
        budget;
    seq_wall;
    seq_cost = Rt_expkit.Instances.solution_total p seq.Rt_core.Exact.solution;
    seq_nodes = seq.Rt_core.Exact.nodes;
    par_wall;
    par_cost = par.Rt_parallel.Portfolio.cost;
    par_nodes = bb_nodes;
    race_domains = (match pool with None -> 1 | Some pl -> Rt_parallel.Pool.size pl);
    speedup = seq_wall /. Float.max 1e-9 par_wall;
    steals = None;
    completed = None;
  }

let run_races () =
  let quick = Sys.getenv_opt "RT_BENCH_FULL" = None in
  let reps = if quick then 3 else 7 in
  let budget = if quick then 1.6 else 4.8 in
  let ws_rows pool reps' =
    [
      (* n=14 completes inside the budget; n=18/22 record honest
         exhausted-at-budget rows on most machines *)
      work_steal_race ~pool ~reps:reps' ~budget ~seed:11 ~n:14 ~m:4 ~load:1.5;
      work_steal_race ~pool ~reps:1 ~budget ~seed:21 ~n:18 ~m:4 ~load:1.5;
      work_steal_race ~pool ~reps:1 ~budget ~seed:23 ~n:22 ~m:4 ~load:1.5;
    ]
  in
  let four =
    Rt_parallel.Pool.with_pool ~domains:4 (fun pl ->
        let pool = Some pl in
        [
          portfolio_race ~pool ~reps ~seed:9 ~n:14 ~m:4 ~load:1.6;
          portfolio_race ~pool ~reps ~seed:11 ~n:15 ~m:4 ~load:1.5;
          budget_race ~pool ~seed:21 ~n:18 ~m:4 ~load:1.5 ~budget;
          budget_race ~pool ~seed:22 ~n:20 ~m:4 ~load:1.5 ~budget;
          budget_race ~pool ~seed:24 ~n:24 ~m:6 ~load:1.5 ~budget;
        ]
        @ ws_rows pool reps)
  in
  let eight =
    Rt_parallel.Pool.with_pool ~domains:8 (fun pl -> ws_rows (Some pl) 1)
  in
  four @ eight

(* Lint runtime over the concurrency-critical roots plus the hot-path
   kernels: the analysis is part of the CI gate, so its wall time is a
   perf axis the trajectory should track — a rule whose cost explodes
   would slow every push. lib/core and lib/speed exercise the v4
   hot-path prepass (interface marks, call graph, propagation) on the
   annotated kernels. Measured from the repo root (where dune exec
   runs) so the .cmt files under _build/default are found; skipped
   gracefully elsewhere. *)
let lint_timing () =
  let roots = [ "lib/parallel"; "lib/check"; "lib/core"; "lib/speed" ] in
  if List.for_all Sys.file_exists roots then
    let wall, findings =
      time_wall ~reps:3 (fun () -> Rt_lint_core.Lint_core.lint_paths roots)
    in
    Some (String.concat "+" roots, wall, List.length findings)
  else None

let json_of_lint (roots, wall, n) =
  Printf.sprintf
    "  {\"kind\": \"lint\", \"name\": %S, \"wall_s\": %.6f, \"findings\": %d}"
    roots wall n

let json_of_kernel (name, ns, words) =
  let num = function Some x -> Printf.sprintf "%.1f" x | None -> "null" in
  Printf.sprintf
    "  {\"kind\": \"kernel\", \"name\": %S, \"ns_per_run\": %s, \
     \"minor_words_per_run\": %s}"
    name (num ns) (num words)

let json_of_race r =
  Printf.sprintf
    "  {\"kind\": \"race\", \"name\": %S, \"domains\": %d, \"hw_cores\": %d, \
     \"seq_wall_s\": %.6f, \"seq_cost\": %.6f, \"seq_nodes\": %d, \
     \"par_wall_s\": %.6f, \"par_cost\": %.6f, \"par_nodes\": %d, \
     \"speedup\": %.3f%s%s}"
    r.race_name r.race_domains
    (Domain.recommended_domain_count ())
    r.seq_wall r.seq_cost r.seq_nodes r.par_wall r.par_cost r.par_nodes
    r.speedup
    (match r.steals with
    | None -> ""
    | Some s -> Printf.sprintf ", \"steals\": %d" s)
    (match r.completed with
    | None -> ""
    | Some c -> Printf.sprintf ", \"completed\": %b" c)

let write_json ~kernels ~races ~lint =
  let lints = Option.to_list lint in
  let oc = open_out out_file in
  output_string oc "[\n";
  output_string oc
    (String.concat ",\n"
       (List.map json_of_kernel kernels
       @ List.map json_of_race races
       @ List.map json_of_lint lints));
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "\nwrote %s (%d kernel timings, %d races, %d lint timings)\n"
    out_file (List.length kernels) (List.length races) (List.length lints)

let () =
  print_tables ();
  let kernels = run_timings () in
  let races = run_races () in
  print_endline "\n== solver races (best-of wall clock, shared incumbent) ==";
  List.iter
    (fun r ->
      Printf.printf
        "  %-32s seq %8.2f ms / %7d nodes   par(%dd) %8.2f ms / %7d nodes   \
         speedup %5.2fx  cost %s\n"
        r.race_name (1e3 *. r.seq_wall) r.seq_nodes r.race_domains
        (1e3 *. r.par_wall) r.par_nodes r.speedup
        (if Rt_prelude.Float_cmp.approx_eq ~eps:1e-6 r.seq_cost r.par_cost
         then "equal"
         else if Rt_prelude.Float_cmp.exact_lt r.par_cost r.seq_cost then
           Printf.sprintf "BETTER (%.4f vs %.4f)" r.par_cost r.seq_cost
         else Printf.sprintf "worse (%.4f vs %.4f)" r.par_cost r.seq_cost))
    races;
  let lint = lint_timing () in
  (match lint with
  | Some (roots, wall, n) ->
      Printf.printf "\n== lint runtime ==\n  %-32s %8.2f ms   %d findings\n"
        roots (1e3 *. wall) n
  | None -> print_endline "\n== lint runtime == (skipped: not at repo root)");
  write_json ~kernels ~races ~lint;
  (* hard gate: a completed work-stealing row whose cost differs from
     the sequential one is a determinism bug, not a perf regression —
     fail the bench run outright *)
  let cost_bugs =
    List.filter
      (fun r ->
        r.completed = Some true
        && not (Rt_prelude.Float_cmp.exact_eq r.seq_cost r.par_cost))
      races
  in
  if cost_bugs <> [] then begin
    List.iter
      (fun r ->
        Printf.printf
          "BENCH GATE FAILURE: %s completed with par_cost %.9f <> seq_cost \
           %.9f\n"
          r.race_name r.par_cost r.seq_cost)
      cost_bugs;
    exit 1
  end;
  print_endline "\nbench: done"
