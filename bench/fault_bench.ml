(* Fault-sweep benchmark: runs the E19 robustness sweep and emits
   BENCH_fault.json — one record per (fault rate x degradation policy)
   with the normalized cost, deadline-miss percentage and shed
   percentage. Fault rates 0 / 5 / 15% by default.

     dune exec bench/fault_bench.exe            # 12 seeds
     RT_BENCH_FULL=1 dune exec bench/fault_bench.exe  # 48 seeds *)

let out_file = "BENCH_fault.json"

let json_of_row (r : Rt_expkit.Exp_fault.row) =
  Printf.sprintf
    "  {\"fault_rate\": %.4f, \"policy\": %S, \"cost_ratio\": %.6f, \
     \"miss_pct\": %.4f, \"shed_pct\": %.4f}"
    r.Rt_expkit.Exp_fault.fault_rate r.policy r.cost_ratio r.miss_pct
    r.shed_pct

let () =
  let seeds = if Sys.getenv_opt "RT_BENCH_FULL" = None then 12 else 48 in
  (* RT_JOBS > 1 fans the replications out over a domain pool; rows are
     byte-identical either way (Exp_fault.sweep's determinism contract) *)
  let domains = Rt_parallel.Pool.default_domains () in
  let rows =
    if domains > 1 then
      Rt_parallel.Pool.with_pool ~domains (fun pool ->
          Rt_expkit.Exp_fault.sweep ~pool ~seeds ())
    else Rt_expkit.Exp_fault.sweep ~seeds ()
  in
  let oc = open_out out_file in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.map json_of_row rows));
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "wrote %s (%d records, %d seeds)\n" out_file
    (List.length rows) seeds;
  (* echo the sweep so the run is self-describing *)
  List.iter
    (fun (r : Rt_expkit.Exp_fault.row) ->
      Printf.printf "  rate %.2f  %-16s cost %.4f  miss %6.2f%%  shed %6.2f%%\n"
        r.Rt_expkit.Exp_fault.fault_rate r.policy r.cost_ratio r.miss_pct
        r.shed_pct)
    rows
